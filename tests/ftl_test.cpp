// Tests for the FTL: mapping semantics, copy-on-write, trim, garbage
// collection (with a reference-model property check), hammer
// amplification accounting, and the §5 data-path mitigations
// (reference tags, XTS) under L2P redirection.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "common/rng.hpp"
#include "ftl/ftl.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

struct FtlRig {
  explicit FtlRig(FtlConfig config = DefaultConfig(),
                  DramProfile profile = DramProfile::Invulnerable()) {
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = std::move(profile);
    dc.seed = 5;
    dram = std::make_unique<DramDevice>(
        dc, MakeLinearMapper(dc.geometry), clock);
    nand = std::make_unique<NandDevice>(
        NandGeometry{.channels = 1,
                     .dies_per_channel = 1,
                     .planes_per_die = 1,
                     .blocks_per_plane = 8,
                     .pages_per_block = 16,
                     .page_bytes = kBlockSize});
    ftl = std::make_unique<Ftl>(config, *nand, *dram);
  }

  static FtlConfig DefaultConfig() {
    FtlConfig c;
    c.num_lbas = 64;
    c.hammers_per_io = 1;
    return c;
  }

  SimClock clock;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
};

std::vector<std::uint8_t> Block(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(Ftl, ReadYourWrite) {
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(5), Block(0xAB)).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(5), out).ok());
  EXPECT_EQ(out, Block(0xAB));
}

TEST(Ftl, UnmappedReadsZerosWithoutFlash) {
  FtlRig rig;
  std::vector<std::uint8_t> out(kBlockSize, 0xEE);
  FtlIoInfo info;
  ASSERT_TRUE(rig.ftl->read(Lba(9), out, &info).ok());
  EXPECT_EQ(out, Block(0));
  EXPECT_FALSE(info.flash_accessed);
  EXPECT_EQ(rig.ftl->stats().unmapped_reads, 1u);
}

TEST(Ftl, MappedReadAccessesFlash) {
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(3), Block(1)).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  FtlIoInfo info;
  ASSERT_TRUE(rig.ftl->read(Lba(3), out, &info).ok());
  EXPECT_TRUE(info.flash_accessed);
}

TEST(Ftl, OverwriteIsCopyOnWrite) {
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(7), Block(1)).ok());
  const std::uint32_t pba1 = rig.ftl->debug_lookup(Lba(7));
  ASSERT_TRUE(rig.ftl->write(Lba(7), Block(2)).ok());
  const std::uint32_t pba2 = rig.ftl->debug_lookup(Lba(7));
  EXPECT_NE(pba1, pba2);  // §3.2: "flash writes are copy-on-write"
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(7), out).ok());
  EXPECT_EQ(out, Block(2));
}

TEST(Ftl, TrimUnmaps) {
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(4), Block(9)).ok());
  ASSERT_TRUE(rig.ftl->trim(Lba(4)).ok());
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(4)), kUnmappedPba32);
  std::vector<std::uint8_t> out(kBlockSize);
  FtlIoInfo info;
  ASSERT_TRUE(rig.ftl->read(Lba(4), out, &info).ok());
  EXPECT_EQ(out, Block(0));
  EXPECT_FALSE(info.flash_accessed);
}

TEST(Ftl, LbaOutOfRangeRejected) {
  FtlRig rig;
  std::vector<std::uint8_t> buf(kBlockSize);
  EXPECT_EQ(rig.ftl->write(Lba(64), buf).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(rig.ftl->read(Lba(1000), buf).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(rig.ftl->trim(Lba(64)).code(), StatusCode::kOutOfRange);
}

TEST(Ftl, WrongSizeRejected) {
  FtlRig rig;
  std::vector<std::uint8_t> small(512);
  EXPECT_EQ(rig.ftl->write(Lba(0), small).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(rig.ftl->read(Lba(0), small).code(),
            StatusCode::kInvalidArgument);
}

TEST(Ftl, GarbageCollectionReclaimsAndPreservesData) {
  FtlRig rig;
  // Fill the whole logical space, then overwrite it several times: the
  // device has 128 physical pages for 64 LBAs, so GC must run.
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t lba = 0; lba < 64; ++lba) {
      ASSERT_TRUE(
          rig.ftl->write(Lba(lba),
                         Block(static_cast<std::uint8_t>(round + lba)))
              .ok())
          << "round " << round << " lba " << lba;
    }
  }
  EXPECT_GT(rig.ftl->stats().gc_runs, 0u);
  EXPECT_GT(rig.ftl->stats().gc_erases, 0u);
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    std::vector<std::uint8_t> out(kBlockSize);
    ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok());
    EXPECT_EQ(out, Block(static_cast<std::uint8_t>(5 + lba)))
        << "lba " << lba;
  }
}

TEST(Ftl, GcRelocationUpdatesMappingViaDram) {
  FtlRig rig;
  // Seed all LBAs, then churn only the even ones: victim blocks keep
  // live odd-LBA pages that GC must relocate.
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(rig.ftl->write(Lba(lba), Block(1)).ok());
  }
  for (int round = 0; round < 12; ++round) {
    for (std::uint64_t lba = 0; lba < 64; lba += 2) {
      ASSERT_TRUE(rig.ftl->write(Lba(lba), Block(1)).ok());
    }
  }
  // GC wrote mappings through DRAM: relocations show up in both stats.
  EXPECT_GT(rig.ftl->stats().gc_relocations, 0u);
  EXPECT_GE(rig.ftl->stats().l2p_dram_writes,
            rig.ftl->stats().host_writes +
                rig.ftl->stats().gc_relocations);
}

TEST(Ftl, HammerAmplificationMultipliesDramReads) {
  FtlConfig config = FtlRig::DefaultConfig();
  config.hammers_per_io = 5;  // §4.1's amplification
  FtlRig rig(config);
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(0), out).ok());
  EXPECT_EQ(rig.ftl->stats().l2p_dram_reads, 5u);
  EXPECT_EQ(rig.dram->stats().reads, 5u);
  EXPECT_EQ(rig.dram->stats().activations, 5u);
}

class FtlRandomOps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FtlRandomOps, MatchesReferenceModel) {
  FtlRig rig;
  Rng rng(GetParam());
  std::unordered_map<std::uint64_t, std::uint8_t> reference;
  for (int op = 0; op < 800; ++op) {
    const std::uint64_t lba = rng.next_below(64);
    const std::uint64_t action = rng.next_below(10);
    if (action < 5) {
      const auto fill = static_cast<std::uint8_t>(rng.next_below(256));
      ASSERT_TRUE(rig.ftl->write(Lba(lba), Block(fill)).ok());
      reference[lba] = fill;
    } else if (action < 7) {
      ASSERT_TRUE(rig.ftl->trim(Lba(lba)).ok());
      reference.erase(lba);
    } else {
      std::vector<std::uint8_t> out(kBlockSize);
      ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok());
      const auto it = reference.find(lba);
      const std::uint8_t expect = it == reference.end() ? 0 : it->second;
      EXPECT_EQ(out[0], expect) << "lba " << lba << " op " << op;
      EXPECT_EQ(out[kBlockSize - 1], expect);
    }
  }
  // Final full verification.
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    std::vector<std::uint8_t> out(kBlockSize);
    ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok());
    const auto it = reference.find(lba);
    EXPECT_EQ(out[0], it == reference.end() ? 0 : it->second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlRandomOps,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 123, 999));

TEST(Ftl, DebugRedirectReturnsOtherLbasData) {
  // The attack's core effect, produced here by hand: repoint LBA A's
  // entry at LBA B's physical page and observe B's data through A.
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0x11)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(2), Block(0x22)).ok());
  rig.ftl->debug_store(Lba(1), rig.ftl->debug_lookup(Lba(2)));
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(1), out).ok());
  EXPECT_EQ(out, Block(0x22));
}

TEST(Ftl, ReferenceTagDetectsRedirect) {
  FtlConfig config = FtlRig::DefaultConfig();
  config.t10_reference_tag = true;
  FtlRig rig(config);
  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0x11)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(2), Block(0x22)).ok());
  // Normal reads pass the check.
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(1), out).ok());
  // A redirected read is refused instead of leaking LBA 2's data.
  rig.ftl->debug_store(Lba(1), rig.ftl->debug_lookup(Lba(2)));
  EXPECT_EQ(rig.ftl->read(Lba(1), out).code(), StatusCode::kCorruption);
  EXPECT_EQ(rig.ftl->stats().reference_tag_mismatches, 1u);
}

TEST(Ftl, XtsEncryptionTurnsRedirectsIntoNoise) {
  FtlConfig config = FtlRig::DefaultConfig();
  config.xts_encryption = true;
  config.device_key = 0x1234;
  FtlRig rig(config);
  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0x11)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(2), Block(0x22)).ok());
  // Normal path decrypts correctly.
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(2), out).ok());
  EXPECT_EQ(out, Block(0x22));
  // Redirected read decrypts under the wrong tweak: noise, not 0x22.
  rig.ftl->debug_store(Lba(1), rig.ftl->debug_lookup(Lba(2)));
  ASSERT_TRUE(rig.ftl->read(Lba(1), out).ok());
  EXPECT_NE(out, Block(0x22));
  EXPECT_NE(out, Block(0x11));
}

TEST(Ftl, XtsSurvivesGarbageCollection) {
  FtlConfig config = FtlRig::DefaultConfig();
  config.xts_encryption = true;
  config.device_key = 0x99;
  FtlRig rig(config);
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t lba = 0; lba < 64; ++lba) {
      ASSERT_TRUE(rig.ftl->write(
          Lba(lba), Block(static_cast<std::uint8_t>(lba))).ok());
    }
  }
  ASSERT_GT(rig.ftl->stats().gc_erases, 0u);
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    std::vector<std::uint8_t> out(kBlockSize);
    ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok());
    EXPECT_EQ(out[0], static_cast<std::uint8_t>(lba));
  }
}

TEST(Ftl, CorruptedEntryBeyondDeviceReadsAsUnmapped) {
  FtlRig rig;
  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0x11)).ok());
  // A flip that pushes the PBA past the device: treated as unmapped
  // (read returns zeros) rather than crashing.
  rig.ftl->debug_store(Lba(1), 0x7FFFFFFF);
  std::vector<std::uint8_t> out(kBlockSize);
  FtlIoInfo info;
  ASSERT_TRUE(rig.ftl->read(Lba(1), out, &info).ok());
  EXPECT_EQ(out, Block(0));
  EXPECT_FALSE(info.flash_accessed);
}

TEST(Ftl, TableInitializedUnmapped) {
  FtlRig rig;
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    EXPECT_EQ(rig.ftl->debug_lookup(Lba(lba)), kUnmappedPba32);
  }
}

TEST(Ftl, RejectsMisconfiguredGeometry) {
  // L2P table bigger than the DRAM.
  FtlConfig config;
  config.num_lbas = 1 << 20;
  SimClock clock;
  DramConfig dc;
  dc.geometry = test::SmallDram();  // 64 KiB
  dc.profile = DramProfile::Invulnerable();
  DramDevice dram(dc, MakeLinearMapper(dc.geometry), clock);
  NandDevice nand(NandGeometry::ForCapacity(16 * kMiB));
  EXPECT_THROW(Ftl(config, nand, dram), CheckFailure);
}

}  // namespace
}  // namespace rhsd
