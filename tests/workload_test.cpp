// Tests for the synthetic workload generator.
#include <gtest/gtest.h>

#include <map>

#include "sim/workload.hpp"

namespace rhsd {
namespace {

WorkloadConfig Base(AccessPattern pattern) {
  WorkloadConfig c;
  c.pattern = pattern;
  c.working_set = 1000;
  c.seed = 5;
  return c;
}

TEST(Workload, AddressesStayInWorkingSet) {
  for (const AccessPattern pattern :
       {AccessPattern::kSequential, AccessPattern::kRandom,
        AccessPattern::kZipfLike, AccessPattern::kHotCold}) {
    WorkloadGenerator gen(Base(pattern));
    for (int i = 0; i < 5000; ++i) {
      EXPECT_LT(gen.next().slba, 1000u) << to_string(pattern);
    }
  }
}

TEST(Workload, DeterministicPerSeed) {
  WorkloadGenerator a(Base(AccessPattern::kZipfLike));
  WorkloadGenerator b(Base(AccessPattern::kZipfLike));
  for (int i = 0; i < 500; ++i) {
    const WorkloadOp oa = a.next();
    const WorkloadOp ob = b.next();
    EXPECT_EQ(oa.slba, ob.slba);
    EXPECT_EQ(oa.is_write, ob.is_write);
  }
}

TEST(Workload, SequentialWrapsAround) {
  WorkloadConfig c = Base(AccessPattern::kSequential);
  c.working_set = 5;
  WorkloadGenerator gen(c);
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t expect = 0; expect < 5; ++expect) {
      EXPECT_EQ(gen.next().slba, expect);
    }
  }
}

TEST(Workload, WriteFractionRespected) {
  WorkloadConfig c = Base(AccessPattern::kRandom);
  c.write_fraction = 0.3;
  WorkloadGenerator gen(c);
  int writes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) writes += gen.next().is_write;
  EXPECT_NEAR(writes / static_cast<double>(n), 0.3, 0.02);
}

TEST(Workload, ZipfLikeSkewsTowardLowAddresses) {
  WorkloadGenerator gen(Base(AccessPattern::kZipfLike));
  std::uint64_t low = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.next().slba < 100) ++low;  // lowest 10% of the space
  }
  // With skew 4, u^4 < 0.1 for u < 0.56 — most accesses land low.
  EXPECT_GT(low, static_cast<std::uint64_t>(n) / 2);
}

TEST(Workload, HotColdSplit) {
  WorkloadConfig c = Base(AccessPattern::kHotCold);
  c.hot_fraction = 0.1;
  c.hot_access_fraction = 0.9;
  WorkloadGenerator gen(c);
  int hot = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (gen.next().slba < 100) ++hot;  // the hot 10%
  }
  EXPECT_NEAR(hot / static_cast<double>(n), 0.9, 0.02);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig c = Base(AccessPattern::kRandom);
  c.working_set = 0;
  EXPECT_THROW(WorkloadGenerator{c}, CheckFailure);
  c = Base(AccessPattern::kRandom);
  c.write_fraction = 1.5;
  EXPECT_THROW(WorkloadGenerator{c}, CheckFailure);
  c = Base(AccessPattern::kZipfLike);
  c.zipf_skew = 0.5;
  EXPECT_THROW(WorkloadGenerator{c}, CheckFailure);
}

}  // namespace
}  // namespace rhsd
