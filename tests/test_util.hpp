// Shared test fixtures: small, fast configurations.
//
// Unit/integration tests run on shrunken geometries so the whole suite
// finishes in seconds; the bench binaries use the paper-scale setup.
#pragma once

#include <cstring>
#include <string>
#include <vector>

#include "dram/dram_device.hpp"
#include "ssd/ssd_device.hpp"

namespace rhsd::test {

/// DRAM profile that flips easily: threshold ~6.4K effective activations
/// per 64 ms window, every row vulnerable.  Keeps hammer loops short.
inline DramProfile EasyFlipProfile() {
  DramProfile p;
  p.name = "test-easyflip";
  p.min_rate_kaccess_s = 50.0;  // threshold = 2 * 50e3 * 0.064 = 6400
  p.vulnerable_row_fraction = 1.0;
  p.max_cells_per_row = 2;
  p.threshold_spread = 0.5;
  return p;
}

/// Small DRAM: 2 banks x 64 rows x 512 B = 64 KiB.
inline DramGeometry SmallDram() {
  return DramGeometry{.channels = 1,
                      .dimms_per_channel = 1,
                      .ranks_per_dimm = 1,
                      .banks_per_rank = 2,
                      .rows_per_bank = 64,
                      .row_bytes = 512};
}

/// Small SSD: 16 MiB (4096 LBAs), L2P = 16 KiB spanning 32 row-chunks of
/// the small DRAM, two equal partitions, easy-flip DRAM.
inline SsdConfig SmallSsd() {
  SsdConfig c;
  c.capacity_bytes = 16 * kMiB;
  c.dram_geometry = SmallDram();
  c.dram_profile = EasyFlipProfile();
  c.xor_config.interleaved_bank_bits = 1;
  c.xor_config.row_remap_bits = 4;
  c.hammers_per_io = 5;
  c.host_interface = HostInterface::kTestbedVmDirect;
  c.partition_blocks = {2048, 2048};
  c.seed = 42;
  return c;
}

/// 4 KiB block filled with a repeating marker string.
inline std::vector<std::uint8_t> MarkedBlock(const std::string& marker) {
  std::vector<std::uint8_t> block(kBlockSize, 0);
  for (std::size_t off = 0; off + marker.size() <= block.size();
       off += marker.size()) {
    std::memcpy(block.data() + off, marker.data(), marker.size());
  }
  return block;
}

}  // namespace rhsd::test
