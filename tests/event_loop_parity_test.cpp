// Parity pin for the NVMe event loop's sharded-bank execution: driving
// the same submission streams through the same arbitration must produce
// bit-identical devices whether commands run one at a time on one
// thread or in per-bank shards on a pool — across seeds, thread counts
// and arbitration policies, and through disturbance flips and the
// plan-divergence rollback path.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "exec/thread_pool.hpp"
#include "ftl/l2p_journal.hpp"
#include "nvme/event_loop.hpp"
#include "sim/workload.hpp"
#include "ssd/ssd_device.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

struct ScriptCmd {
  bool is_write = false;
  std::uint64_t slba = 0;
};
using Script = std::vector<ScriptCmd>;

/// Small SSD carved into `tenants` equal partitions.
SsdConfig PartitionedSsd(std::uint32_t tenants) {
  SsdConfig c = test::SmallSsd();
  const std::uint64_t per = c.num_lbas() / tenants;
  c.partition_blocks.assign(tenants, per);
  return c;
}

/// One deterministic per-stream command list; patterns rotate so the
/// streams stress different access shapes.
std::vector<Script> MakeScripts(std::uint32_t streams,
                                std::uint64_t per_stream,
                                std::uint64_t working_set,
                                double write_fraction, std::uint64_t seed) {
  constexpr AccessPattern kPatterns[] = {
      AccessPattern::kZipfLike, AccessPattern::kRandom,
      AccessPattern::kBursty, AccessPattern::kHotCold};
  std::vector<Script> scripts(streams);
  for (std::uint32_t s = 0; s < streams; ++s) {
    WorkloadConfig wc;
    wc.pattern = kPatterns[s % 4];
    wc.working_set = working_set;
    wc.write_fraction = write_fraction;
    wc.seed = seed * 1000 + s;
    WorkloadGenerator gen(wc);
    scripts[s].reserve(per_stream);
    for (std::uint64_t i = 0; i < per_stream; ++i) {
      const WorkloadOp op = gen.next();
      scripts[s].push_back({op.is_write, op.slba});
    }
  }
  return scripts;
}

/// Everything observable after a run, for exact comparison.
struct Outcome {
  std::vector<std::vector<std::uint16_t>> cqe_cids;
  std::vector<std::vector<int>> cqe_codes;
  std::vector<std::vector<std::uint64_t>> cqe_times;
  std::vector<std::vector<std::uint8_t>> final_bufs;
  std::uint64_t clock_ns = 0;
  std::uint64_t retired = 0;
  DramStats dram;
  FtlStats ftl;
  NandStats nand;
  NvmeStats nvme;
  std::vector<FlipEvent> flips;
  std::vector<std::uint32_t> l2p;
  EventLoopStats loop;
  /// Mitigation machinery state: the device-total TRR refresh count and
  /// the PARA RNG stream position.  Sharded TRR delta merges and PARA
  /// pre-draw slices must leave both exactly where scalar execution
  /// leaves them.
  std::uint64_t trr_refreshes = 0;
  Rng para_rng{0};
  /// Injected faults actually fired, in order (empty fault plan: empty).
  std::vector<InjectionRecord> injected;
  /// Journal writer position and raw journal-block NAND contents —
  /// sharded write commit must append bit-identically to sequential.
  std::uint64_t journal_epoch = 0;
  std::uint32_t journal_next_page = 0;
  std::size_t journal_pending = 0;
  std::uint64_t journal_since_snapshot = 0;
  JournalStats journal;
  std::vector<std::uint8_t> journal_pages;
};

std::vector<std::uint8_t> WritePayload(std::uint32_t stream,
                                       std::uint16_t cid) {
  std::vector<std::uint8_t> block(kBlockSize);
  for (std::size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<std::uint8_t>(stream * 37 + cid * 11 + i);
  }
  return block;
}

/// Drive `scripts` (one per stream / namespace) through a fresh device
/// with the given event-loop configuration: submit in waves until each
/// ring is full, run the loop to idle, poll, repeat.
Outcome Drive(const SsdConfig& cfg, const std::vector<Script>& scripts,
              EventLoopConfig lc, std::uint32_t depth = 8,
              const NvmeRetryPolicy* retry = nullptr) {
  const auto streams = static_cast<std::uint32_t>(scripts.size());
  SsdDevice ssd(cfg);
  NvmeEventLoop loop(ssd.controller(), lc);
  std::vector<std::unique_ptr<NvmeQueuePair>> qps;
  Outcome out;
  out.final_bufs.assign(streams,
                        std::vector<std::uint8_t>(kBlockSize, 0));
  out.cqe_cids.resize(streams);
  out.cqe_codes.resize(streams);
  out.cqe_times.resize(streams);
  for (std::uint32_t s = 0; s < streams; ++s) {
    qps.push_back(std::make_unique<NvmeQueuePair>(
        ssd.controller(), static_cast<std::uint16_t>(s + 1), depth));
    if (retry != nullptr) qps[s]->set_retry_policy(*retry);
    loop.attach(*qps[s], /*weight=*/1 + s % 3);
  }
  std::vector<std::size_t> next(streams, 0);
  std::vector<std::uint16_t> cid(streams, 0);
  for (;;) {
    bool pending = false;
    for (std::uint32_t s = 0; s < streams; ++s) {
      while (next[s] < scripts[s].size()) {
        const ScriptCmd& c = scripts[s][next[s]];
        NvmeCommand cmd =
            c.is_write
                ? NvmeCommand::Write(cid[s], s + 1, c.slba,
                                     WritePayload(s, cid[s]))
                : NvmeCommand::Read(cid[s], s + 1, c.slba,
                                    out.final_bufs[s]);
        if (!qps[s]->submit(std::move(cmd)).ok()) break;
        ++next[s];
        ++cid[s];
      }
      pending = pending || next[s] < scripts[s].size() ||
                qps[s]->sq_inflight() > 0;
    }
    if (!pending) break;
    out.retired += loop.run_until_idle();
    for (std::uint32_t s = 0; s < streams; ++s) {
      while (auto cqe = qps[s]->poll()) {
        out.cqe_cids[s].push_back(cqe->cid);
        out.cqe_codes[s].push_back(static_cast<int>(cqe->status.code()));
        out.cqe_times[s].push_back(cqe->completed_ns);
      }
    }
  }
  out.clock_ns = ssd.clock().now_ns();
  out.dram = ssd.dram().stats();
  out.ftl = ssd.ftl().stats();
  out.nand = ssd.nand().stats();
  out.nvme = ssd.controller().stats();
  out.flips = ssd.dram().flip_events();
  out.l2p.reserve(cfg.num_lbas());
  for (std::uint64_t lba = 0; lba < cfg.num_lbas(); ++lba) {
    out.l2p.push_back(ssd.ftl().debug_lookup(Lba(lba)));
  }
  out.loop = loop.stats();
  out.trr_refreshes = ssd.dram().trr_refreshes_issued();
  out.para_rng = ssd.dram().para_rng_state();
  if (ssd.fault_injector() != nullptr) {
    out.injected = ssd.fault_injector()->log();
  }
  if (const L2pJournal* j = ssd.ftl().journal(); j != nullptr) {
    out.journal_epoch = j->epoch();
    out.journal_next_page = j->next_page();
    out.journal_pending = j->pending_records();
    out.journal_since_snapshot = j->records_since_snapshot();
    out.journal = j->stats();
    // Raw dump of the journal's NAND blocks (unwritten pages read as
    // 0xFF).  Runs after the stats capture would be wrong — the dump
    // itself ticks NAND read counters — so it runs last and is only
    // compared against the other mode's equally-placed dump.
    const NandGeometry& geom = ssd.nand().geometry();
    std::vector<std::uint8_t> page(geom.page_bytes);
    for (std::uint32_t b = 0; b < j->block_count(); ++b) {
      for (std::uint32_t p = 0; p < geom.pages_per_block; ++p) {
        page.assign(page.size(), 0);
        (void)ssd.nand().read(j->first_block() + b, p, page);
        out.journal_pages.insert(out.journal_pages.end(), page.begin(),
                                 page.end());
      }
    }
  }
  return out;
}

void ExpectSameOutcome(const Outcome& ref, const Outcome& got) {
  EXPECT_EQ(ref.retired, got.retired);
  EXPECT_EQ(ref.clock_ns, got.clock_ns);
  EXPECT_EQ(ref.cqe_cids, got.cqe_cids);
  EXPECT_EQ(ref.cqe_codes, got.cqe_codes);
  EXPECT_EQ(ref.cqe_times, got.cqe_times);
  EXPECT_EQ(ref.final_bufs, got.final_bufs);
  EXPECT_EQ(ref.l2p, got.l2p);

  EXPECT_EQ(ref.dram.reads, got.dram.reads);
  EXPECT_EQ(ref.dram.writes, got.dram.writes);
  EXPECT_EQ(ref.dram.activations, got.dram.activations);
  EXPECT_EQ(ref.dram.row_buffer_hits, got.dram.row_buffer_hits);
  EXPECT_EQ(ref.dram.bitflips, got.dram.bitflips);
  EXPECT_EQ(ref.dram.ecc_corrected, got.dram.ecc_corrected);
  EXPECT_EQ(ref.dram.trr_refreshes, got.dram.trr_refreshes);
  EXPECT_EQ(ref.dram.para_refreshes, got.dram.para_refreshes);
  EXPECT_EQ(ref.trr_refreshes, got.trr_refreshes);
  EXPECT_TRUE(ref.para_rng == got.para_rng)
      << "PARA RNG stream position diverged";

  EXPECT_EQ(ref.ftl.host_reads, got.ftl.host_reads);
  EXPECT_EQ(ref.ftl.host_writes, got.ftl.host_writes);
  EXPECT_EQ(ref.ftl.unmapped_reads, got.ftl.unmapped_reads);
  EXPECT_EQ(ref.ftl.flash_reads, got.ftl.flash_reads);
  EXPECT_EQ(ref.ftl.flash_programs, got.ftl.flash_programs);
  EXPECT_EQ(ref.ftl.gc_runs, got.ftl.gc_runs);
  EXPECT_EQ(ref.ftl.l2p_dram_reads, got.ftl.l2p_dram_reads);
  EXPECT_EQ(ref.ftl.l2p_dram_writes, got.ftl.l2p_dram_writes);
  EXPECT_EQ(ref.ftl.l2p_corruption_errors, got.ftl.l2p_corruption_errors);

  EXPECT_EQ(ref.nand.reads, got.nand.reads);
  EXPECT_EQ(ref.nand.programs, got.nand.programs);
  EXPECT_EQ(ref.nand.erases, got.nand.erases);

  EXPECT_EQ(ref.nvme.read_cmds, got.nvme.read_cmds);
  EXPECT_EQ(ref.nvme.write_cmds, got.nvme.write_cmds);
  EXPECT_EQ(ref.nvme.errors, got.nvme.errors);
  EXPECT_EQ(ref.nvme.busy_ns, got.nvme.busy_ns);

  ASSERT_EQ(ref.flips.size(), got.flips.size());
  for (std::size_t i = 0; i < ref.flips.size(); ++i) {
    EXPECT_EQ(ref.flips[i].time_ns, got.flips[i].time_ns) << i;
    EXPECT_EQ(ref.flips[i].global_row, got.flips[i].global_row) << i;
    EXPECT_EQ(ref.flips[i].byte_offset, got.flips[i].byte_offset) << i;
    EXPECT_EQ(ref.flips[i].bit, got.flips[i].bit) << i;
    EXPECT_EQ(ref.flips[i].new_value, got.flips[i].new_value) << i;
  }

  // Every injected fault must fire at the same per-class op index in
  // both modes — the planner's cardinal promise.
  ASSERT_EQ(ref.injected.size(), got.injected.size());
  for (std::size_t i = 0; i < ref.injected.size(); ++i) {
    EXPECT_EQ(ref.injected[i].cls, got.injected[i].cls) << i;
    EXPECT_EQ(ref.injected[i].op_index, got.injected[i].op_index) << i;
    EXPECT_EQ(ref.injected[i].param, got.injected[i].param) << i;
  }

  // Journal parity: the sharded commit's serial append replay must
  // leave the same writer position, stats, and raw flash contents.
  EXPECT_EQ(ref.journal_epoch, got.journal_epoch);
  EXPECT_EQ(ref.journal_next_page, got.journal_next_page);
  EXPECT_EQ(ref.journal_pending, got.journal_pending);
  EXPECT_EQ(ref.journal_since_snapshot, got.journal_since_snapshot);
  EXPECT_EQ(ref.journal.snapshots, got.journal.snapshots);
  EXPECT_EQ(ref.journal.records, got.journal.records);
  EXPECT_EQ(ref.journal.record_pages, got.journal.record_pages);
  EXPECT_EQ(ref.journal.sync_flushes, got.journal.sync_flushes);
  EXPECT_EQ(ref.journal_pages, got.journal_pages);
}

TEST(EventLoopParity, ShardedMatchesSequentialAcrossMatrix) {
  constexpr std::uint32_t kStreams = 4;
  const SsdConfig cfg = PartitionedSsd(kStreams);
  const std::uint64_t partition = cfg.num_lbas() / kStreams;
  for (const std::uint64_t seed : {1ull, 7ull}) {
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::kRoundRobin, ArbitrationPolicy::kWeighted}) {
      const auto scripts = MakeScripts(kStreams, 250, partition,
                                       /*write_fraction=*/0.2, seed);
      EventLoopConfig seq;
      seq.policy = policy;
      seq.seed = seed;
      seq.sharded = false;
      const Outcome ref = Drive(cfg, scripts, seq);
      EXPECT_EQ(ref.loop.sharded_commands, 0u);
      for (const unsigned threads : {2u, 5u}) {
        exec::ThreadPool pool(threads);
        EventLoopConfig par;
        par.policy = policy;
        par.seed = seed;
        par.sharded = true;
        par.pool = &pool;
        const Outcome got = Drive(cfg, scripts, par);
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " policy=" << to_string(policy)
                     << " threads=" << threads);
        // The mixed mix must actually exercise the sharded fast path —
        // for writes too: they draft into shards behind plan-time PBA
        // reservations instead of flushing the batch.
        EXPECT_GT(got.loop.sharded_commands, 0u);
        EXPECT_GT(got.loop.batches, 0u);
        EXPECT_GT(got.loop.sharded_writes, 0u);
        ExpectSameOutcome(ref, got);
      }
    }
  }
}

// Hammer-heavy mix on a weaker part: disturbance flips land in L2P
// entries mid-batch, some crossing the mapped/unmapped class boundary,
// which invalidates the batch plan and forces the rollback + sequential
// replay path.  Parity must hold through all of it.
TEST(EventLoopParity, FlipsAndRollbackStayBitExact) {
  constexpr std::uint32_t kStreams = 2;
  SsdConfig cfg = PartitionedSsd(kStreams);
  cfg.dram_profile.min_rate_kaccess_s = 2.0;  // threshold: 256 acts
  const std::uint64_t partition = cfg.num_lbas() / kStreams;

  // Stream 0 hammers two fixed (unmapped) LBAs; stream 1 sweeps its
  // whole partition with mostly-mapped traffic (writes first, then
  // reads) so flipped entries get re-read with stale plans.
  std::vector<Script> scripts(kStreams);
  for (int round = 0; round < 1500; ++round) {
    scripts[0].push_back({false, 0});
    scripts[0].push_back({false, 128});
  }
  WorkloadConfig wc;
  wc.pattern = AccessPattern::kZipfLike;
  wc.working_set = partition;
  wc.write_fraction = 0.3;
  wc.seed = 99;
  WorkloadGenerator gen(wc);
  for (int i = 0; i < 1200; ++i) {
    const WorkloadOp op = gen.next();
    scripts[1].push_back({op.is_write, op.slba});
  }

  EventLoopConfig seq;
  seq.sharded = false;
  const Outcome ref = Drive(cfg, scripts, seq);
  // The point of this fixture: disturbance flips actually happened.
  EXPECT_GT(ref.flips.size(), 0u);
  for (const unsigned threads : {2u, 5u}) {
    exec::ThreadPool pool(threads);
    EventLoopConfig par;
    par.sharded = true;
    par.pool = &pool;
    const Outcome got = Drive(cfg, scripts, par);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    // Writes ride the same batches the flips invalidate, so the
    // rollback path exercises the write-reservation undo too.
    EXPECT_GT(got.loop.sharded_writes, 0u);
    ExpectSameOutcome(ref, got);
  }
}

// Engineered mid-batch GC: a write-heavy overwrite mix on the small
// device burns through the free-block pool, so Ftl::plan_write_reserve
// starts refusing reservations (a fresh block would dip below the GC
// watermark) and the planner flushes those writes to the sequential
// path, where garbage collection runs exactly as it would have in the
// pure sequential interleaving.  Program/erase order, journal contents
// and the final L2P must stay bit-exact through the GC storms.
TEST(EventLoopParity, MidBatchGcReservationRefusalStaysBitExact) {
  constexpr std::uint32_t kStreams = 2;
  SsdConfig cfg = PartitionedSsd(kStreams);
  // Throughput fixture, not a flip fixture: disturbance off so the only
  // divergence pressure is the allocator itself.
  cfg.dram_profile = DramProfile::Invulnerable();
  const std::uint64_t partition = cfg.num_lbas() / kStreams;
  const auto scripts = MakeScripts(kStreams, 2600, partition,
                                   /*write_fraction=*/0.9, /*seed=*/13);
  EventLoopConfig seq;
  seq.sharded = false;
  const Outcome ref = Drive(cfg, scripts, seq);
  // The fixture must actually drive garbage collection.
  EXPECT_GT(ref.ftl.gc_runs, 0u);
  for (const unsigned threads : {2u, 5u}) {
    exec::ThreadPool pool(threads);
    EventLoopConfig par;
    par.sharded = true;
    par.pool = &pool;
    const Outcome got = Drive(cfg, scripts, par);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    EXPECT_GT(got.loop.sharded_writes, 0u);
    EXPECT_GT(got.loop.write_reserve_flushes, 0u);
    EXPECT_GT(got.ftl.gc_runs, 0u);
    ExpectSameOutcome(ref, got);
  }
}

// Engineered rollback: map a whole DRAM row's worth of L2P entries,
// then hammer a physically adjacent row while re-reading the mapped
// entries with deep queues, so a flip that pushes an entry past
// total_pages (mapped -> unmapped class) lands mid-batch and
// invalidates plans that were drafted before it fired.  This pins the
// rollback + sequential-replay path itself, not just runs where the
// plans happen to survive.
TEST(EventLoopParity, EngineeredClassFlipForcesRollback) {
  constexpr std::uint32_t kStreams = 2;
  SsdConfig cfg = PartitionedSsd(kStreams);
  cfg.dram_profile.min_rate_kaccess_s = 2.0;  // threshold: 256..384 acts
  cfg.dram_profile.max_cells_per_row = 32;    // many candidate cells
  const std::uint64_t partition = cfg.num_lbas() / kStreams;
  const auto owner = [&](std::uint64_t lba) {
    return static_cast<std::uint32_t>(lba / partition);
  };

  // Map every L2P entry to its DRAM row with a probe device (same
  // config + seed => same address mapping as the devices under test).
  std::map<std::uint64_t, std::vector<std::uint64_t>> row_lbas;
  {
    SsdDevice probe(cfg);
    const DramGeometry& geom = probe.dram().mapper().geometry();
    for (std::uint64_t lba = 0; lba < cfg.num_lbas(); ++lba) {
      const DramCoord c = probe.dram().mapper().decode(
          probe.ftl().layout().entry_addr(lba));
      row_lbas[c.global_row(geom)].push_back(lba);
    }
  }

  // Pick the victim row: all entries owned by one stream, with entry
  // rows on as many physically adjacent same-bank rows as possible to
  // hammer from.
  const std::uint32_t rows_per_bank = cfg.dram_geometry.rows_per_bank;
  std::uint64_t victim_row = 0;
  std::vector<std::uint64_t> victims;
  std::vector<std::uint64_t> aggressors;
  for (const auto& [row, lbas] : row_lbas) {
    const std::uint32_t v = owner(lbas.front());
    bool uniform = true;
    for (const std::uint64_t lba : lbas) uniform &= owner(lba) == v;
    if (!uniform) continue;
    std::vector<std::uint64_t> aggr;
    for (const std::int64_t d : {std::int64_t{-1}, std::int64_t{1}}) {
      const std::uint64_t nrow = row + static_cast<std::uint64_t>(d);
      if (d < 0 && row % rows_per_bank == 0) continue;
      if (nrow / rows_per_bank != row / rows_per_bank) continue;
      const auto it = row_lbas.find(nrow);
      if (it != row_lbas.end()) aggr.push_back(it->second.front());
    }
    if (aggr.size() > aggressors.size()) {
      victim_row = row;
      victims = lbas;
      aggressors = aggr;
    }
  }
  ASSERT_FALSE(victims.empty());
  ASSERT_FALSE(aggressors.empty());
  const std::uint32_t victim_stream = owner(victims.front());

  // Phase 1 maps every victim entry; streams that only hammer are
  // padded with far-row filler reads so no disturbance accrues near the
  // victim row until all entries are mapped.  Phase 2 interleaves
  // hammer reads with victim re-reads — plus periodic far-row filler
  // writes, so drafted batches that a flip invalidates also carry write
  // reservations the rollback must unwind.  Deep rings put everything
  // in the same drafted batch.
  std::vector<std::uint64_t> filler(kStreams, UINT64_MAX);
  for (const auto& [row, lbas] : row_lbas) {
    const std::uint64_t dist =
        row > victim_row ? row - victim_row : victim_row - row;
    if (dist <= 2) continue;
    for (const std::uint64_t lba : lbas) {
      if (filler[owner(lba)] == UINT64_MAX) filler[owner(lba)] = lba;
    }
  }
  std::vector<Script> scripts(kStreams);
  for (const std::uint64_t v : victims) {
    scripts[victim_stream].push_back({true, v % partition});
  }
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    if (s == victim_stream) continue;
    ASSERT_NE(filler[s], UINT64_MAX);
    for (std::size_t i = 0; i < victims.size(); ++i) {
      scripts[s].push_back({false, filler[s] % partition});
    }
  }
  ASSERT_NE(filler[victim_stream], UINT64_MAX);
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t a = aggressors[i % aggressors.size()];
    scripts[owner(a)].push_back({false, a % partition});
    scripts[victim_stream].push_back(
        {false, victims[i % victims.size()] % partition});
    if (i % 5 == 0) {
      scripts[victim_stream].push_back(
          {true, filler[victim_stream] % partition});
    }
  }

  EventLoopConfig seq;
  seq.sharded = false;
  const Outcome ref = Drive(cfg, scripts, seq, /*depth=*/64);
  EXPECT_GT(ref.flips.size(), 0u);
  for (const unsigned threads : {2u, 5u}) {
    exec::ThreadPool pool(threads);
    EventLoopConfig par;
    par.sharded = true;
    par.pool = &pool;
    const Outcome got = Drive(cfg, scripts, par, /*depth=*/64);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    // The fixture exists to drive the rollback path — with writes
    // drafted alongside the reads whose plans the flip invalidates.
    EXPECT_GE(got.loop.rollbacks, 1u);
    EXPECT_GT(got.loop.sharded_writes, 0u);
    ExpectSameOutcome(ref, got);
  }
}

// Fault injectors no longer gate the sharded path: the planner cuts
// every batch short of the next scheduled fault, so each injected fault
// fires at the same per-class op index — with the same Status, flips
// and device stats — as the sequential interleaving, across seeds,
// thread counts and arbitration policies.
TEST(EventLoopParity, InjectedFaultsLandAtSequentialOpIndices) {
  constexpr std::uint32_t kStreams = 4;
  const SsdConfig base = PartitionedSsd(kStreams);
  const std::uint64_t partition = base.num_lbas() / kStreams;
  for (const std::uint64_t seed : {11ull, 23ull}) {
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::kRoundRobin, ArbitrationPolicy::kWeighted}) {
      SsdConfig cfg = base;
      FaultRates rates;
      rates.nvme_timeout = 0.004;
      rates.nvme_drop = 0.003;
      rates.dram_bit_error = 0.004;
      rates.nand_read = 0.003;
      cfg.fault_plan = FaultPlan::Random(seed * 77 + 5, rates,
                                         /*horizon=*/1100);
      const auto scripts = MakeScripts(kStreams, 250, partition,
                                       /*write_fraction=*/0.2, seed);
      NvmeRetryPolicy retry;
      retry.max_attempts = 2;
      EventLoopConfig seq;
      seq.policy = policy;
      seq.seed = seed;
      seq.sharded = false;
      const Outcome ref = Drive(cfg, scripts, seq, /*depth=*/8, &retry);
      // The storm must actually fire through every planned class.
      EXPECT_GT(ref.injected.size(), 0u);
      for (const unsigned threads : {2u, 5u}) {
        exec::ThreadPool pool(threads);
        EventLoopConfig par;
        par.policy = policy;
        par.seed = seed;
        par.sharded = true;
        par.pool = &pool;
        const Outcome got = Drive(cfg, scripts, par, /*depth=*/8, &retry);
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " policy=" << to_string(policy)
                     << " threads=" << threads);
        // Fault-free stretches still shard; fault horizons cut batches.
        EXPECT_GT(got.loop.sharded_commands, 0u);
        EXPECT_GT(got.loop.early_flushes, 0u);
        ExpectSameOutcome(ref, got);
      }
    }
  }
}

// A dense transport storm against a retry-less policy exhausts host
// retries, so tenants enter and leave quarantine during the run.
// Quarantine decisions are part of arbitration state, so both modes
// must take them at the same pick indices — parity must survive the
// full failure-domain machinery being active.
TEST(EventLoopParity, QuarantineKeepsShardedParity) {
  constexpr std::uint32_t kStreams = 4;
  const SsdConfig base = PartitionedSsd(kStreams);
  const std::uint64_t partition = base.num_lbas() / kStreams;
  for (const std::uint64_t seed : {5ull, 31ull}) {
    for (const ArbitrationPolicy policy :
         {ArbitrationPolicy::kRoundRobin, ArbitrationPolicy::kWeighted}) {
      SsdConfig cfg = base;
      FaultRates rates;
      rates.nvme_drop = 0.03;
      rates.nvme_timeout = 0.01;
      cfg.fault_plan = FaultPlan::Random(seed * 131 + 7, rates,
                                         /*horizon=*/1100);
      const auto scripts = MakeScripts(kStreams, 250, partition,
                                       /*write_fraction=*/0.2, seed);
      EventLoopConfig seq;
      seq.policy = policy;
      seq.seed = seed;
      seq.sharded = false;
      const Outcome ref = Drive(cfg, scripts, seq);
      // max_attempts defaults to 1: every injected drop/timeout is a
      // retry-exhausted command, so quarantine engages for real.
      EXPECT_GT(ref.loop.quarantines, 0u);
      for (const unsigned threads : {2u, 5u}) {
        exec::ThreadPool pool(threads);
        EventLoopConfig par;
        par.policy = policy;
        par.seed = seed;
        par.sharded = true;
        par.pool = &pool;
        const Outcome got = Drive(cfg, scripts, par);
        SCOPED_TRACE(::testing::Message()
                     << "seed=" << seed << " policy=" << to_string(policy)
                     << " threads=" << threads);
        EXPECT_GT(got.loop.sharded_commands, 0u);
        EXPECT_EQ(ref.loop.quarantines, got.loop.quarantines);
        EXPECT_EQ(ref.loop.degraded_rejections, got.loop.degraded_rejections);
        ExpectSameOutcome(ref, got);
      }
    }
  }
}

// Mitigated configs no longer gate the shard path: TRR tables shard
// per bank with commit-time delta merges, PARA consumes a plan-time
// pre-drawn slice of the global RNG stream, and rate-limiter stalls
// are computed serially at draft time on a limiter copy.  Every
// observable — including the device-total TRR refresh count and the
// PARA RNG stream position — must stay bit-identical to the
// sequential interleaving, across seeds, thread counts, arbitration
// policies, and the TRRespass single-tracker thrash regime.
TEST(EventLoopParity, MitigatedConfigsShardBitExact) {
  struct Variant {
    const char* name;
    bool trr;
    std::uint32_t trackers;
    double para;
    bool limited;
  };
  constexpr Variant kVariants[] = {
      {"trr", true, 4, 0.0, false},
      {"trr-thrash", true, 1, 0.0, false},
      {"para", false, 4, 1.0 / 64, false},
      {"trr+para", true, 4, 1.0 / 64, false},
      {"rate-limit", false, 4, 0.0, true},
  };
  constexpr std::uint32_t kStreams = 2;
  for (const Variant& v : kVariants) {
    SsdConfig cfg = PartitionedSsd(kStreams);
    cfg.dram_profile.min_rate_kaccess_s = 2.0;  // flips at 256..384 acts
    if (v.trr) {
      cfg.dram_mitigations.trr = true;
      cfg.dram_mitigations.trr_config.trackers_per_bank = v.trackers;
      cfg.dram_mitigations.trr_config.activation_threshold = 200;
    }
    cfg.dram_mitigations.para_probability = v.para;
    // Cap far below the effective command rate so draft-time stalls
    // actually fire.
    if (v.limited) cfg.rate_limit = RateLimiterConfig{5e3, 2.0};
    const std::uint64_t partition = cfg.num_lbas() / kStreams;
    for (const std::uint64_t seed : {3ull, 17ull}) {
      // Stream 0 hammers two fixed (unmapped) entry rows hard enough
      // to cross the TRR threshold and feed PARA draws; stream 1 runs
      // a mixed mapped workload so writes ride the same batches.
      std::vector<Script> scripts(kStreams);
      for (int round = 0; round < 500; ++round) {
        scripts[0].push_back({false, 0});
        scripts[0].push_back({false, 128});
      }
      WorkloadConfig wc;
      wc.pattern = AccessPattern::kZipfLike;
      wc.working_set = partition;
      wc.write_fraction = 0.3;
      wc.seed = seed;
      WorkloadGenerator gen(wc);
      for (int i = 0; i < 500; ++i) {
        const WorkloadOp op = gen.next();
        scripts[1].push_back({op.is_write, op.slba});
      }
      for (const ArbitrationPolicy policy :
           {ArbitrationPolicy::kRoundRobin, ArbitrationPolicy::kWeighted}) {
        EventLoopConfig seq;
        seq.policy = policy;
        seq.seed = seed;
        seq.sharded = false;
        const Outcome ref = Drive(cfg, scripts, seq);
        SCOPED_TRACE(::testing::Message()
                     << "variant=" << v.name << " seed=" << seed
                     << " policy=" << to_string(policy));
        // The fixture must actually engage the mitigation under test.
        if (v.trr) {
          EXPECT_GT(ref.trr_refreshes, 0u);
        }
        if (v.para > 0.0) {
          EXPECT_GT(ref.dram.para_refreshes, 0u);
        }
        EXPECT_EQ(ref.loop.mitigated_sharded_commands, 0u);
        for (const unsigned threads : {2u, 5u}) {
          exec::ThreadPool pool(threads);
          EventLoopConfig par;
          par.policy = policy;
          par.seed = seed;
          par.sharded = true;
          par.pool = &pool;
          const Outcome got = Drive(cfg, scripts, par);
          SCOPED_TRACE(::testing::Message() << "threads=" << threads);
          // Mitigated traffic must take the shard fast path, not fall
          // back to sequential.
          EXPECT_GT(got.loop.sharded_commands, 0u);
          EXPECT_GT(got.loop.mitigated_sharded_commands, 0u);
          if (v.trr) {
            EXPECT_GT(got.loop.trr_shard_merges, 0u);
          }
          if (v.para > 0.0) {
            EXPECT_GT(got.loop.para_predraw_draws, 0u);
          }
          if (v.limited) {
            EXPECT_GT(got.loop.rate_limit_plan_stalls, 0u);
          }
          ExpectSameOutcome(ref, got);
        }
      }
    }
  }
}

// Engineered mid-batch rollback under TRR+PARA: the class-flip fixture
// from EngineeredClassFlipForcesRollback with both DRAM mitigations
// live.  When a flip invalidates drafted plans, rollback must restore
// the TRR tracker tables and the PARA RNG to their pre-batch snapshots
// byte-exactly before the sequential replay re-executes the batch —
// any slack shows up as a diverged refresh count or RNG position.
TEST(EventLoopParity, MitigatedRollbackRestoresTrackerAndRng) {
  constexpr std::uint32_t kStreams = 2;
  SsdConfig cfg = PartitionedSsd(kStreams);
  cfg.dram_profile.min_rate_kaccess_s = 2.0;  // threshold: 256..384 acts
  cfg.dram_profile.max_cells_per_row = 32;    // many candidate cells
  // TRR threshold sits just above the flip threshold, so flips still
  // land (forcing rollbacks) while the tracker keeps firing; PARA is
  // weak enough not to suppress the hammering but advances the RNG on
  // every activation.
  cfg.dram_mitigations.trr = true;
  cfg.dram_mitigations.trr_config.activation_threshold = 400;
  cfg.dram_mitigations.para_probability = 1.0 / 4096;
  const std::uint64_t partition = cfg.num_lbas() / kStreams;
  const auto owner = [&](std::uint64_t lba) {
    return static_cast<std::uint32_t>(lba / partition);
  };

  std::map<std::uint64_t, std::vector<std::uint64_t>> row_lbas;
  {
    SsdDevice probe(cfg);
    const DramGeometry& geom = probe.dram().mapper().geometry();
    for (std::uint64_t lba = 0; lba < cfg.num_lbas(); ++lba) {
      const DramCoord c = probe.dram().mapper().decode(
          probe.ftl().layout().entry_addr(lba));
      row_lbas[c.global_row(geom)].push_back(lba);
    }
  }
  const std::uint32_t rows_per_bank = cfg.dram_geometry.rows_per_bank;
  std::uint64_t victim_row = 0;
  std::vector<std::uint64_t> victims;
  std::vector<std::uint64_t> aggressors;
  for (const auto& [row, lbas] : row_lbas) {
    const std::uint32_t v = owner(lbas.front());
    bool uniform = true;
    for (const std::uint64_t lba : lbas) uniform &= owner(lba) == v;
    if (!uniform) continue;
    std::vector<std::uint64_t> aggr;
    for (const std::int64_t d : {std::int64_t{-1}, std::int64_t{1}}) {
      const std::uint64_t nrow = row + static_cast<std::uint64_t>(d);
      if (d < 0 && row % rows_per_bank == 0) continue;
      if (nrow / rows_per_bank != row / rows_per_bank) continue;
      const auto it = row_lbas.find(nrow);
      if (it != row_lbas.end()) aggr.push_back(it->second.front());
    }
    if (aggr.size() > aggressors.size()) {
      victim_row = row;
      victims = lbas;
      aggressors = aggr;
    }
  }
  ASSERT_FALSE(victims.empty());
  ASSERT_FALSE(aggressors.empty());
  const std::uint32_t victim_stream = owner(victims.front());

  std::vector<std::uint64_t> filler(kStreams, UINT64_MAX);
  for (const auto& [row, lbas] : row_lbas) {
    const std::uint64_t dist =
        row > victim_row ? row - victim_row : victim_row - row;
    if (dist <= 2) continue;
    for (const std::uint64_t lba : lbas) {
      if (filler[owner(lba)] == UINT64_MAX) filler[owner(lba)] = lba;
    }
  }
  std::vector<Script> scripts(kStreams);
  for (const std::uint64_t v : victims) {
    scripts[victim_stream].push_back({true, v % partition});
  }
  for (std::uint32_t s = 0; s < kStreams; ++s) {
    if (s == victim_stream) continue;
    ASSERT_NE(filler[s], UINT64_MAX);
    for (std::size_t i = 0; i < victims.size(); ++i) {
      scripts[s].push_back({false, filler[s] % partition});
    }
  }
  ASSERT_NE(filler[victim_stream], UINT64_MAX);
  for (int i = 0; i < 1500; ++i) {
    const std::uint64_t a = aggressors[i % aggressors.size()];
    scripts[owner(a)].push_back({false, a % partition});
    scripts[victim_stream].push_back(
        {false, victims[i % victims.size()] % partition});
    if (i % 5 == 0) {
      scripts[victim_stream].push_back(
          {true, filler[victim_stream] % partition});
    }
  }

  EventLoopConfig seq;
  seq.sharded = false;
  const Outcome ref = Drive(cfg, scripts, seq, /*depth=*/64);
  EXPECT_GT(ref.flips.size(), 0u);
  EXPECT_GT(ref.trr_refreshes, 0u);
  for (const unsigned threads : {2u, 5u}) {
    exec::ThreadPool pool(threads);
    EventLoopConfig par;
    par.sharded = true;
    par.pool = &pool;
    const Outcome got = Drive(cfg, scripts, par, /*depth=*/64);
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    // The fixture exists to drive the rollback path with live
    // mitigation state in the invalidated batches.
    EXPECT_GE(got.loop.rollbacks, 1u);
    EXPECT_GT(got.loop.mitigated_sharded_commands, 0u);
    ExpectSameOutcome(ref, got);
  }
}

// With any shard-incompatible knob set, the loop must notice and stay
// on the sequential path (still correct, no sinks involved).  ECC
// scrubs rewrite entry rows in place as a side effect of reads, so it
// remains gated even now that TRR/PARA/rate-limiting shard.
TEST(EventLoopParity, GatedConfigFallsBackToSequential) {
  SsdConfig cfg = PartitionedSsd(2);
  cfg.dram_mitigations.ecc = true;
  const auto scripts =
      MakeScripts(2, 50, cfg.num_lbas() / 2, /*write_fraction=*/0.1, 3);
  exec::ThreadPool pool(3);
  EventLoopConfig par;
  par.sharded = true;
  par.pool = &pool;
  const Outcome got = Drive(cfg, scripts, par);
  EXPECT_EQ(got.loop.sharded_commands, 0u);
  EXPECT_EQ(got.loop.batches, 0u);
  EXPECT_EQ(got.retired, 100u);
}

}  // namespace
}  // namespace rhsd
