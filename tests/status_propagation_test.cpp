// End-to-end Status propagation: faults injected at the NAND/firmware
// layers must surface, with the right code, in the NVMe completion the
// host polls — submit -> process -> controller -> FTL -> NAND and back.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "nvme/queue_pair.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

struct PathRig {
  explicit PathRig(FaultPlan plan, std::uint32_t blocks = 16)
      : injector(std::move(plan)) {
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(
        dc, MakeLinearMapper(dc.geometry), clock);
    nand = std::make_unique<NandDevice>(
        NandGeometry{.channels = 1,
                     .dies_per_channel = 1,
                     .planes_per_die = 1,
                     .blocks_per_plane = blocks,
                     .pages_per_block = 16,
                     .page_bytes = kBlockSize});
    dram->set_fault_injector(&injector);
    nand->set_fault_injector(&injector);
    FtlConfig fc;
    fc.num_lbas = 64;
    ftl = std::make_unique<Ftl>(fc, *nand, *dram);
    ftl->set_fault_injector(&injector);
    NvmeConfig nc;
    nc.namespaces = {NvmeNamespaceConfig{Lba(0), 64}};
    nc.iops = IopsModel(1e6);
    controller = std::make_unique<NvmeController>(nc, *ftl, clock);
  }

  SimClock clock;
  FaultInjector injector;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<NvmeController> controller;
};

std::vector<std::uint8_t> Block(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(StatusPropagation, NandReadFaultReachesTheCompletion) {
  FaultPlan plan;
  // Outlast the initial read and both read-retries.
  plan.add(FaultClass::kNandRead, 0, /*count=*/8);
  PathRig rig(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 5, Block(0xAB))).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(2, 1, 5, out)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_TRUE(completions[0].status.ok());  // the write
  EXPECT_EQ(completions[1].status.code(), StatusCode::kCorruption);
  EXPECT_GE(rig.ftl->stats().read_retries, 2u);
}

TEST(StatusPropagation, TransientNandFaultIsInvisibleToTheHost) {
  FaultPlan plan;
  plan.add(FaultClass::kNandRead, 0, /*count=*/1);
  PathRig rig(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 5, Block(0xAB))).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(2, 1, 5, out)).ok());
  for (const auto& completion : qp.drain()) {
    EXPECT_TRUE(completion.status.ok()) << completion.status;
  }
  EXPECT_EQ(out, Block(0xAB));  // firmware retry hid the media error
}

TEST(StatusPropagation, PersistentProgramFaultExhaustsRetirement) {
  FaultPlan plan;
  // Every program attempt fails: the FTL retires block after block and
  // finally gives up; the host must see the device-unavailable code,
  // not a silent success.
  plan.add(FaultClass::kNandProgram, 0, /*count=*/64);
  PathRig rig(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 3, Block(0x77))).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kUnavailable);
  EXPECT_GE(rig.ftl->stats().retired_blocks, 4u);
  // Nothing was mapped by the failed write.
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(3)), kUnmappedPba32);
}

TEST(StatusPropagation, DegradedDeviceFailsWritesButServesReads) {
  FaultPlan plan;
  plan.add(FaultClass::kNandProgram, 1, /*count=*/64);
  // 8 data blocks == the spare floor: one retirement tips read-only.
  PathRig rig(plan, /*blocks=*/8);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  // Program op 0 (this write's first attempt) succeeds...
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 3, Block(0x44))).ok());
  // ...the next write burns through the retry budget and fails.
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(2, 1, 4, Block(0x55))).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_EQ(completions[1].status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(rig.ftl->read_only());

  // Later writes are rejected up front; reads still flow end to end.
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(3, 1, 5, Block(0x66))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(4, 1, 3, out)).ok());
  completions = qp.drain();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(completions[1].status.ok());
  EXPECT_EQ(out, Block(0x44));
}

TEST(StatusPropagation, PowerLossAbortsEverythingUntilReboot) {
  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, 1);
  PathRig rig(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 0, Block(0x10))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(2, 1, 1, Block(0x20))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(3, 1, 0, out)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_TRUE(completions[0].status.ok());
  EXPECT_EQ(completions[1].status.code(), StatusCode::kAborted);
  EXPECT_EQ(completions[2].status.code(), StatusCode::kAborted);
  EXPECT_TRUE(rig.ftl->powered_off());
}

TEST(StatusPropagation, FrontEndRejectionStillConsumesTransportOpIndex) {
  // Transport faults tick at the controller's namespace front end, so a
  // command that never reaches the FTL (here: an out-of-range read
  // rejected at the namespace boundary) still consumes its op index in
  // both transport streams.  The drop planned at op index 1 must land
  // on the *second* dispatched command — before this fix the rejected
  // command skipped its index and every later injection shifted early.
  FaultPlan plan;
  plan.add(FaultClass::kNvmeDrop, /*op_index=*/1);
  PathRig rig(plan);
  rig.controller->set_fault_injector(&rig.injector);
  NvmeQueuePair qp(*rig.controller, 1, 8);

  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(1, 1, 9999, out)).ok());  // op 0
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(2, 1, 4, Block(0x42))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(3, 1, 5, Block(0x43))).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kOutOfRange);
  EXPECT_EQ(completions[1].status.code(), StatusCode::kUnavailable);
  EXPECT_TRUE(completions[2].status.ok());
  EXPECT_EQ(rig.controller->stats().transport_drops, 1u);
  EXPECT_EQ(qp.queue_stats().drops, 1u);
  // The dropped write never reached the device.
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(4)), kUnmappedPba32);
}

TEST(StatusPropagation, OutOfRangeStillBeatsInjectedFaults) {
  FaultPlan plan;
  plan.add(FaultClass::kNandRead, 0, /*count=*/64);
  PathRig rig(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(1, 1, 9999, out)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace rhsd
