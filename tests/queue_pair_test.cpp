// Tests for the NVMe submission/completion queue pair.
#include <gtest/gtest.h>

#include <memory>

#include "nvme/queue_pair.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

struct QpRig {
  QpRig() {
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(
        dc, MakeLinearMapper(dc.geometry), clock);
    nand = std::make_unique<NandDevice>(
        NandGeometry{.channels = 1,
                     .dies_per_channel = 1,
                     .planes_per_die = 1,
                     .blocks_per_plane = 8,
                     .pages_per_block = 16,
                     .page_bytes = kBlockSize});
    FtlConfig fc;
    fc.num_lbas = 64;
    ftl = std::make_unique<Ftl>(fc, *nand, *dram);
    NvmeConfig config;
    config.namespaces = {NvmeNamespaceConfig{Lba(0), 64}};
    config.iops = IopsModel(1e6);
    controller = std::make_unique<NvmeController>(config, *ftl, clock);
  }

  SimClock clock;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<NvmeController> controller;
};

std::vector<std::uint8_t> Block(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(QueuePair, WriteThenReadThroughTheRings) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, /*qid=*/1, /*depth=*/8);
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 5, Block(0xAA))).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(2, 1, 5, out)).ok());

  EXPECT_EQ(qp.sq_inflight(), 2u);
  EXPECT_EQ(qp.process(), 2u);
  EXPECT_EQ(qp.cq_pending(), 2u);

  auto c1 = qp.poll();
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->cid, 1u);
  EXPECT_TRUE(c1->status.ok());
  auto c2 = qp.poll();
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->cid, 2u);
  EXPECT_TRUE(c2->status.ok());
  EXPECT_GE(c2->completed_ns, c1->completed_ns);  // in-order device
  EXPECT_EQ(out, Block(0xAA));
  EXPECT_FALSE(qp.poll().has_value());
}

TEST(QueuePair, SubmissionBackPressureAtDepth) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, /*depth=*/4);
  for (std::uint16_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(qp.submit(NvmeCommand::Flush(i, 1)).ok());
  }
  // A full ring is a transient resource condition, not a caller bug.
  EXPECT_EQ(qp.submit(NvmeCommand::Flush(9, 1)).code(),
            StatusCode::kResourceExhausted);
  // Draining frees the slot.
  (void)qp.drain();
  EXPECT_TRUE(qp.submit(NvmeCommand::Flush(9, 1)).ok());
}

TEST(QueuePair, SqFullIsResourceExhaustedAtMinimumDepth) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, /*depth=*/2);
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(1, 1)).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(2, 1)).ok());
  const Status full = qp.submit(NvmeCommand::Flush(3, 1));
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(full.message().find("full"), std::string::npos);
  EXPECT_EQ(qp.sq_inflight(), 2u);  // rejected command was not enqueued
}

TEST(QueuePair, RetryRecoversFromTimeoutAndDrop) {
  QpRig rig;
  FaultPlan plan;
  plan.add({FaultClass::kNvmeTimeout, /*op_index=*/0, /*count=*/1});
  plan.add({FaultClass::kNvmeDrop, /*op_index=*/2, /*count=*/1});
  FaultInjector injector(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);
  qp.set_fault_injector(&injector);
  qp.set_retry_policy(NvmeRetryPolicy{.max_attempts = 3});

  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 5, Block(0x5A))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(2, 1, 6, Block(0x6B))).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_TRUE(completions[0].status.ok()) << completions[0].status;
  EXPECT_TRUE(completions[1].status.ok()) << completions[1].status;
  EXPECT_EQ(qp.queue_stats().timeouts, 1u);
  EXPECT_EQ(qp.queue_stats().drops, 1u);
  EXPECT_EQ(qp.queue_stats().retries, 2u);

  // Both writes landed despite the faulted first attempts.
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.controller->read(1, 5, out).ok());
  EXPECT_EQ(out, Block(0x5A));
  ASSERT_TRUE(rig.controller->read(1, 6, out).ok());
  EXPECT_EQ(out, Block(0x6B));
}

TEST(QueuePair, RetryExhaustionSurfacesDeadlineExceeded) {
  QpRig rig;
  FaultPlan plan;
  // Every attempt of the single command times out.
  plan.add({FaultClass::kNvmeTimeout, /*op_index=*/0, /*count=*/2});
  FaultInjector injector(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);
  qp.set_fault_injector(&injector);
  qp.set_retry_policy(NvmeRetryPolicy{.max_attempts = 2});

  const SimClock::Nanos start = rig.clock.now_ns();
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(1, 1)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(qp.queue_stats().timeouts, 2u);
  EXPECT_EQ(qp.queue_stats().retries, 1u);
  // The host paid both timeouts plus one backoff in simulated time.
  const NvmeRetryPolicy policy = qp.retry_policy();
  EXPECT_GE(rig.clock.now_ns() - start,
            2 * policy.timeout_ns + policy.backoff_base_ns);
}

TEST(QueuePair, DroppedCommandWithoutRetryIsUnavailable) {
  QpRig rig;
  FaultPlan plan;
  plan.add({FaultClass::kNvmeDrop, /*op_index=*/0, /*count=*/1});
  FaultInjector injector(plan);
  NvmeQueuePair qp(*rig.controller, 1, 8);
  qp.set_fault_injector(&injector);  // default policy: max_attempts = 1

  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 5, Block(0xEE))).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kUnavailable);
  // The drop happened before the device saw the command.
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(5)), kUnmappedPba32);
}

TEST(QueuePair, AbortRemovesQueuedCommand) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, 8);
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 3, Block(0x11))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(2, 1, 4, Block(0x22))).ok());

  ASSERT_TRUE(qp.abort(2).ok());
  EXPECT_EQ(qp.abort(2).code(), StatusCode::kNotFound);
  EXPECT_EQ(qp.queue_stats().aborts, 1u);

  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 2u);
  // The abort completion was posted immediately, ahead of cid 1.
  EXPECT_EQ(completions[0].cid, 2u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kAborted);
  EXPECT_EQ(completions[1].cid, 1u);
  EXPECT_TRUE(completions[1].status.ok());
  // The aborted write never reached the device.
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(4)), kUnmappedPba32);
  EXPECT_NE(rig.ftl->debug_lookup(Lba(3)), kUnmappedPba32);
}

TEST(QueuePair, ProcessRespectsCompletionRingCapacity) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, /*depth=*/2);
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(1, 1)).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(2, 1)).ok());
  EXPECT_EQ(qp.process(), 2u);
  // CQ is now full; new submissions sit in the SQ until polled.
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(3, 1)).ok());
  EXPECT_EQ(qp.process(), 0u);
  (void)qp.poll();
  EXPECT_EQ(qp.process(), 1u);
}

TEST(QueuePair, ErrorsTravelInCompletions) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, 8);
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(qp.submit(NvmeCommand::Read(7, 1, 9999, out)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 1u);
  EXPECT_EQ(completions[0].cid, 7u);
  EXPECT_EQ(completions[0].status.code(), StatusCode::kOutOfRange);
}

TEST(QueuePair, TrimAndFlushFlow) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, 8);
  ASSERT_TRUE(qp.submit(NvmeCommand::Write(1, 1, 3, Block(5))).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Trim(2, 1, 3, 1)).ok());
  ASSERT_TRUE(qp.submit(NvmeCommand::Flush(3, 1)).ok());
  auto completions = qp.drain();
  ASSERT_EQ(completions.size(), 3u);
  for (const auto& completion : completions) {
    EXPECT_TRUE(completion.status.ok()) << completion.cid;
  }
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(3)), kUnmappedPba32);
}

TEST(QueuePair, ProcessMaxCommandsBound) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, 16);
  for (std::uint16_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(qp.submit(NvmeCommand::Flush(i, 1)).ok());
  }
  EXPECT_EQ(qp.process(3), 3u);
  EXPECT_EQ(qp.sq_inflight(), 7u);
  EXPECT_EQ(qp.cq_pending(), 3u);
}

TEST(QueuePair, DepthTooSmallRejected) {
  QpRig rig;
  EXPECT_THROW(NvmeQueuePair(*rig.controller, 1, 1), CheckFailure);
}

TEST(QueuePair, MultipleQueuesShareTheDevice) {
  QpRig rig;
  NvmeQueuePair qp1(*rig.controller, 1, 8);
  NvmeQueuePair qp2(*rig.controller, 2, 8);
  ASSERT_TRUE(qp1.submit(NvmeCommand::Write(1, 1, 0, Block(0x11))).ok());
  ASSERT_TRUE(qp2.submit(NvmeCommand::Write(1, 1, 1, Block(0x22))).ok());
  (void)qp1.drain();
  (void)qp2.drain();
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.controller->read(1, 0, out).ok());
  EXPECT_EQ(out, Block(0x11));
  ASSERT_TRUE(rig.controller->read(1, 1, out).ok());
  EXPECT_EQ(out, Block(0x22));
}

TEST(QueuePair, DeepPipelineSustainsModelRate) {
  QpRig rig;
  NvmeQueuePair qp(*rig.controller, 1, 64);
  std::vector<std::uint8_t> out(kBlockSize);
  // 10K reads through the ring (unmapped => interface-bound).
  std::uint32_t submitted = 0;
  while (submitted < 10'000) {
    while (submitted < 10'000 &&
           qp.submit(NvmeCommand::Read(
                         static_cast<std::uint16_t>(submitted), 1, 20,
                         out))
               .ok()) {
      ++submitted;
    }
    (void)qp.process();
    while (qp.poll().has_value()) {
    }
  }
  (void)qp.drain();
  EXPECT_NEAR(rig.controller->measured_iops(), 1e6, 1e5);
}

}  // namespace
}  // namespace rhsd
