// Tests for the common substrate: strong ids, Status/StatusOr, CRC-32C,
// deterministic RNG, simulated clock, formatting helpers.
#include <gtest/gtest.h>

#include <bit>
#include <set>

#include "common/crc32c.hpp"
#include "common/hexdump.hpp"
#include "common/rng.hpp"
#include "common/sim_clock.hpp"
#include "common/status.hpp"
#include "common/types.hpp"

namespace rhsd {
namespace {

TEST(StrongId, DistinctTypesDoNotCompare) {
  const Lba lba(7);
  const Pba pba(7);
  EXPECT_EQ(lba.value(), pba.value());
  // Lba and Pba are different types; this is a compile-time property —
  // here we just document the accessor behaviour.
  EXPECT_EQ(lba, Lba(7));
  EXPECT_NE(lba, Lba(8));
}

TEST(StrongId, Arithmetic) {
  Lba a(10);
  EXPECT_EQ((a + 5).value(), 15u);
  EXPECT_EQ((a - 3).value(), 7u);
  EXPECT_EQ(Lba(20) - Lba(5), 15u);
  ++a;
  EXPECT_EQ(a.value(), 11u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(Lba(1), Lba(2));
  EXPECT_GE(Lba(5), Lba(5));
}

TEST(StrongId, Hashable) {
  std::set<Lba> lbas{Lba(3), Lba(1), Lba(3)};
  EXPECT_EQ(lbas.size(), 2u);
  EXPECT_EQ(std::hash<Lba>{}(Lba(42)), std::hash<Lba>{}(Lba(42)));
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = NotFound("no such thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such thing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: no such thing");
}

TEST(Status, AllConstructorsProduceTheirCode) {
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDenied("x").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v = NotFound("gone");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOnErrorThrowsCheckFailure) {
  StatusOr<int> v = NotFound("gone");
  EXPECT_THROW((void)v.value(), CheckFailure);
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::string> v = std::string("payload");
  const std::string s = std::move(v).value();
  EXPECT_EQ(s, "payload");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int x, int* out) {
  RHSD_ASSIGN_OR_RETURN(const int h, Half(x));
  RHSD_RETURN_IF_ERROR(Status::Ok());
  *out = h;
  return Status::Ok();
}

TEST(StatusOr, Macros) {
  int out = 0;
  EXPECT_TRUE(UseMacros(10, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseMacros(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
  // 32 bytes of 0xFF.
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones), 0x62A8AB43u);
  // Ascending 0..31.
  std::vector<std::uint8_t> asc(32);
  for (int i = 0; i < 32; ++i) asc[i] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(Crc32c(asc), 0x46DD794Eu);
}

TEST(Crc32c, EmptyIsZero) {
  EXPECT_EQ(Crc32c({}), 0u);
}

TEST(Crc32c, SeedChaining) {
  std::vector<std::uint8_t> data{1, 2, 3, 4, 5, 6, 7, 8};
  const std::uint32_t whole = Crc32c(data);
  const std::uint32_t part1 = Crc32c(std::span(data).subspan(0, 4));
  const std::uint32_t chained =
      Crc32c(std::span(data).subspan(4), part1);
  EXPECT_EQ(whole, chained);
}

TEST(Crc32c, SensitiveToSingleBitFlips) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t base = Crc32c(data);
  for (int byte : {0, 13, 63}) {
    for (int bit : {0, 5, 7}) {
      auto copy = data;
      copy[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_NE(Crc32c(copy), base)
          << "flip at " << byte << ":" << bit << " not detected";
    }
  }
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  // Different seed gives a different stream (overwhelmingly likely).
  Rng a2(123);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    any_diff |= (a2.next() != c.next());
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextInInclusiveRange) {
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t v = rng.next_in(10, 12);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 12u);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // law of large numbers
}

TEST(Rng, BoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(Rng, BoolThresholdMatchesNextBoolDrawForDraw) {
  // The precomputed-threshold form must agree with next_bool on every
  // draw (and consume the stream identically), including probabilities
  // that are exact multiples of 2^-53 and ones that are not.
  for (const double p : {0.25, 1.0 / 3.0, 0.001, 0x1.0p-53, 0.9999,
                         5e-7, 0.5}) {
    Rng a(99);
    Rng b(99);
    const std::uint64_t thr = Rng::bool_threshold(p);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_EQ(a.next_bool(p), b.next_bool_at(thr)) << "p=" << p;
    }
    EXPECT_EQ(a.next(), b.next());  // identical stream position
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  Rng parent(21);
  Rng child = parent.fork();
  // The child stream differs from the parent's continued stream.
  bool differ = false;
  for (int i = 0; i < 50; ++i) differ |= (parent.next() != child.next());
  EXPECT_TRUE(differ);
}

TEST(Mix64, IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Adjacent inputs should differ in many bits (avalanche sanity).
  const int pop = std::popcount(Mix64(100) ^ Mix64(101));
  EXPECT_GT(pop, 16);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_EQ(clock.now_ns(), 0u);
  clock.advance_ns(1500);
  EXPECT_EQ(clock.now_ns(), 1500u);
  clock.advance_seconds(2.0);
  EXPECT_EQ(clock.now_ns(), 1500u + 2'000'000'000u);
  EXPECT_NEAR(clock.now_seconds(), 2.0000015, 1e-9);
}

TEST(Hexdump, FormatsAsciiGutter) {
  std::vector<std::uint8_t> data = {'H', 'i', 0x00, 0xFF};
  const std::string dump = Hexdump(data);
  EXPECT_NE(dump.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(dump.find("|Hi..|"), std::string::npos);
}

TEST(Hexdump, TruncatesAtMaxBytes) {
  std::vector<std::uint8_t> data(512, 0x41);
  const std::string dump = Hexdump(data, 32);
  EXPECT_NE(dump.find("more bytes"), std::string::npos);
}

TEST(HumanCount, Ranges) {
  EXPECT_EQ(HumanCount(42), "42");
  EXPECT_EQ(HumanCount(780e3), "780K");
  EXPECT_EQ(HumanCount(1.5e6), "1.5M");
  EXPECT_EQ(HumanCount(2.1e9), "2.1G");
}

TEST(Check, ThrowsWithContext) {
  try {
    RHSD_CHECK_MSG(1 == 2, "math broke: " << 42);
    FAIL() << "should have thrown";
  } catch (const CheckFailure& e) {
    EXPECT_NE(std::string(e.what()).find("math broke: 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rhsd
