// Power-loss torture: crash the firmware at *every* host IO index of a
// deterministic trace and prove Ftl::recover() reconstructs exactly the
// L2P state the no-crash reference had at that prefix (or names the
// lost LBAs explicitly).  Crash indices run through exec::RunTrials, so
// the sweep also pins thread-count invariance of the recovery path.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "exec/experiment_engine.hpp"
#include "exec/thread_pool.hpp"
#include "fault/fault_injector.hpp"
#include "fs/fsck.hpp"
#include "ftl/ftl.hpp"
#include "nvme/event_loop.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

constexpr std::uint64_t kNumLbas = 64;
constexpr std::uint64_t kTraceLen = 512;
constexpr std::uint64_t kTraceSeed = 0x70CC;

// One host operation of the torture trace.
struct TraceOp {
  enum class Kind { kWrite, kTrim, kRead };
  Kind kind = Kind::kWrite;
  std::uint64_t lba = 0;
  std::uint8_t fill = 0;
};

// The trace is a pure function of the seed: mostly writes (so the
// journal and GC stay busy on the small geometry), some trims (the
// no-flash-artifact case) and reads (which also tick the power-loss
// stream).
std::vector<TraceOp> MakeTrace() {
  std::vector<TraceOp> trace(kTraceLen);
  Rng rng(kTraceSeed);
  for (std::uint64_t i = 0; i < kTraceLen; ++i) {
    TraceOp& op = trace[i];
    const std::uint64_t dice = rng.next_below(10);
    op.kind = dice < 7   ? TraceOp::Kind::kWrite
              : dice < 8 ? TraceOp::Kind::kTrim
                         : TraceOp::Kind::kRead;
    op.lba = rng.next_below(kNumLbas);
    op.fill = static_cast<std::uint8_t>(rng.next_below(255) + 1);
  }
  return trace;
}

struct PlRig {
  explicit PlRig(FaultPlan plan = {}) : injector(std::move(plan)) {
    reboot(/*first_boot=*/true);
  }

  /// (Re)create DRAM + FTL over the (possibly surviving) NAND.  A fresh
  /// DRAM models the power loss wiping the volatile table.
  void reboot(bool first_boot = false) {
    FtlConfig config;
    config.num_lbas = kNumLbas;
    config.hammers_per_io = 1;
    config.journal.enabled = true;
    ftl.reset();
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(
        dc, MakeLinearMapper(dc.geometry), clock);
    if (first_boot) {
      // 16 blocks x 16 pages: 12 data blocks + 4 journal blocks.
      nand = std::make_unique<NandDevice>(
          NandGeometry{.channels = 1,
                       .dies_per_channel = 1,
                       .planes_per_die = 1,
                       .blocks_per_plane = 16,
                       .pages_per_block = 16,
                       .page_bytes = kBlockSize});
      nand->set_fault_injector(nullptr);
    }
    ftl = std::make_unique<Ftl>(config, *nand, *dram);
  }

  Status apply(const TraceOp& op) {
    std::vector<std::uint8_t> buf(kBlockSize, op.fill);
    switch (op.kind) {
      case TraceOp::Kind::kWrite: return ftl->write(Lba(op.lba), buf);
      case TraceOp::Kind::kTrim: return ftl->trim(Lba(op.lba));
      case TraceOp::Kind::kRead: return ftl->read(Lba(op.lba), buf);
    }
    return InvalidArgument("bad trace op");
  }

  [[nodiscard]] std::vector<std::uint32_t> table() const {
    std::vector<std::uint32_t> t(kNumLbas);
    for (std::uint64_t lba = 0; lba < kNumLbas; ++lba) {
      t[lba] = ftl->debug_lookup(Lba(lba));
    }
    return t;
  }

  SimClock clock;
  FaultInjector injector;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
};

/// Reference run: tables[k] is the L2P table after the first k trace
/// ops; contents[k][lba] the expected fill (nullopt = unmapped).
struct Reference {
  std::vector<std::vector<std::uint32_t>> tables;
  std::vector<std::vector<std::optional<std::uint8_t>>> contents;
};

const Reference& GoldenReference() {
  static const Reference ref = [] {
    Reference r;
    const std::vector<TraceOp> trace = MakeTrace();
    PlRig rig;
    std::vector<std::optional<std::uint8_t>> model(kNumLbas);
    r.tables.push_back(rig.table());
    r.contents.push_back(model);
    for (const TraceOp& op : trace) {
      EXPECT_TRUE(rig.apply(op).ok());
      if (op.kind == TraceOp::Kind::kWrite) {
        model[op.lba] = op.fill;
      } else if (op.kind == TraceOp::Kind::kTrim) {
        model[op.lba] = std::nullopt;
      }
      r.tables.push_back(rig.table());
      r.contents.push_back(model);
    }
    return r;
  }();
  return ref;
}

/// Crash the trace at host-op `crash_index`, reboot, recover, and
/// compare against the reference prefix.  Returns a failure description
/// or the empty string.
std::string RunCrashTrial(std::uint64_t crash_index) {
  const Reference& ref = GoldenReference();
  const std::vector<TraceOp> trace = MakeTrace();

  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, crash_index);
  PlRig rig(plan);
  rig.ftl->set_fault_injector(&rig.injector);

  for (std::uint64_t i = 0; i < kTraceLen; ++i) {
    const Status s = rig.apply(trace[i]);
    if (i < crash_index) {
      if (!s.ok()) return "op " + std::to_string(i) + ": " + s.to_string();
    } else {
      if (s.code() != StatusCode::kAborted) {
        return "crash op did not abort: " + s.to_string();
      }
      break;
    }
  }
  if (!rig.ftl->powered_off()) return "device still powered on";

  // Reboot: volatile state is gone; flash survives.
  rig.reboot();
  if (!rig.ftl->needs_recovery()) return "journal history not detected";
  std::vector<std::uint8_t> buf(kBlockSize);
  if (rig.ftl->read(Lba(0), buf).code() != StatusCode::kFailedPrecondition) {
    return "IO allowed before recovery";
  }

  FtlRecoveryReport report;
  const Status rs = rig.ftl->recover(&report);
  if (!rs.ok()) return "recover: " + rs.to_string();
  if (!report.snapshot_found) return "no snapshot found";

  // The mapping must match the reference prefix exactly, except for
  // LBAs the recovery explicitly reported as lost (quarantined to
  // unmapped).  On this fault-free-media trace nothing should be lost.
  if (!report.lost_lbas.empty()) {
    return "lost " + std::to_string(report.lost_lbas.size()) + " LBAs";
  }
  const std::vector<std::uint32_t> recovered = rig.table();
  const std::vector<std::uint32_t>& expected = ref.tables[crash_index];
  for (std::uint64_t lba = 0; lba < kNumLbas; ++lba) {
    if (recovered[lba] != expected[lba]) {
      return "LBA " + std::to_string(lba) + ": recovered " +
             std::to_string(recovered[lba]) + " != reference " +
             std::to_string(expected[lba]);
    }
  }

  // And the data behind the mapping must be the reference content.
  for (std::uint64_t lba = 0; lba < kNumLbas; ++lba) {
    const Status s = rig.ftl->read(Lba(lba), buf);
    if (!s.ok()) return "post-recovery read: " + s.to_string();
    const std::optional<std::uint8_t> want =
        ref.contents[crash_index][lba];
    const std::uint8_t fill = want.value_or(0);
    for (const std::uint8_t byte : buf) {
      if (byte != fill) {
        return "LBA " + std::to_string(lba) + " content mismatch";
      }
    }
  }

  // The recovered device must be fully writable again.
  const Status ws =
      rig.ftl->write(Lba(0), std::vector<std::uint8_t>(kBlockSize, 0xEE));
  if (!ws.ok()) return "post-recovery write: " + ws.to_string();
  return {};
}

TEST(PowerLoss, TortureEveryIoIndexRecoversExactly) {
  exec::ThreadPool pool;  // RHSD_THREADS-sized
  const std::vector<std::string> failures = exec::RunTrials(
      pool, kTraceLen, /*base_seed=*/0,
      [](std::uint64_t crash_index, std::uint64_t) {
        return RunCrashTrial(crash_index);
      });
  for (std::uint64_t k = 0; k < failures.size(); ++k) {
    EXPECT_EQ(failures[k], "") << "crash index " << k;
  }
}

TEST(PowerLoss, CrashBeforeFirstIoRecoversEmptyDevice) {
  EXPECT_EQ(RunCrashTrial(0), "");
}

TEST(PowerLoss, RecoverOnFreshDeviceIsANoOp) {
  PlRig rig;
  EXPECT_FALSE(rig.ftl->needs_recovery());
  FtlRecoveryReport report;
  ASSERT_TRUE(rig.ftl->recover(&report).ok());
  EXPECT_TRUE(report.lost_lbas.empty());
  ASSERT_TRUE(
      rig.ftl->write(Lba(1), std::vector<std::uint8_t>(kBlockSize, 1)).ok());
}

TEST(PowerLoss, SecondPowerLossDuringRecoveredLifeAlsoRecovers) {
  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, 10);
  plan.add(FaultClass::kPowerLoss, 25);
  PlRig rig(plan);
  rig.ftl->set_fault_injector(&rig.injector);
  const std::vector<TraceOp> trace = MakeTrace();

  std::uint64_t i = 0;
  for (int life = 0; life < 2; ++life) {
    for (; i < kTraceLen; ++i) {
      if (rig.apply(trace[i]).code() == StatusCode::kAborted) break;
    }
    rig.reboot();
    // The op counter keeps running across reboots (same injector), so
    // the second event fires mid-second-life.
    rig.ftl->set_fault_injector(&rig.injector);
    ASSERT_TRUE(rig.ftl->recover().ok());
  }
  // Both crashes consumed; the remainder of the trace completes.
  for (; i < kTraceLen; ++i) {
    ASSERT_TRUE(rig.apply(trace[i]).ok()) << i;
  }
}

// Filesystem-level convergence: a power loss between filesystem
// operations must leave a mountable, fsck-clean filesystem after
// Ftl::recover(), with earlier files intact.
TEST(PowerLoss, FsckCleanAfterCrashAtOperationBoundary) {
  PlRig rig;
  auto controller = [&] {
    NvmeConfig nc;
    nc.namespaces = {NvmeNamespaceConfig{Lba(0), kNumLbas}};
    nc.iops = IopsModel(1e6);
    return std::make_unique<NvmeController>(nc, *rig.ftl, rig.clock);
  };
  auto ctrl = controller();
  fs::NvmeBlockDevice bdev(*ctrl, 1);
  auto fs_or = fs::FileSystem::Format(bdev);
  ASSERT_TRUE(fs_or.ok());
  std::unique_ptr<fs::FileSystem> filesystem = std::move(fs_or).value();

  const fs::Credentials root{0};
  const std::vector<std::uint8_t> payload = test::MarkedBlock("alpha!");
  auto ino = filesystem->create(root, "/a.dat", 0644);
  ASSERT_TRUE(ino.ok());
  ASSERT_TRUE(filesystem->write(root, *ino, 0, payload).ok());

  // Arm the power loss to hit the very next host IO: the crash lands on
  // the first device access of the *next* filesystem operation, i.e. at
  // a filesystem-consistent boundary.
  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, 0);
  FaultInjector late(plan);
  rig.ftl->set_fault_injector(&late);
  EXPECT_FALSE(filesystem->create(root, "/b.dat", 0644).ok());
  EXPECT_TRUE(rig.ftl->powered_off());
  filesystem.reset();

  rig.reboot();
  ASSERT_TRUE(rig.ftl->needs_recovery());
  FtlRecoveryReport report;
  ASSERT_TRUE(rig.ftl->recover(&report).ok());
  EXPECT_TRUE(report.lost_lbas.empty());

  ctrl = controller();
  fs::NvmeBlockDevice bdev2(*ctrl, 1);
  auto mounted = fs::FileSystem::Mount(bdev2);
  ASSERT_TRUE(mounted.ok()) << mounted.status();
  const fs::FsckReport fsck = fs::Fsck::Check(**mounted);
  EXPECT_TRUE(fsck.clean()) << (fsck.errors.empty() ? "" : fsck.errors[0]);

  auto found = (*mounted)->lookup(root, "/a.dat");
  ASSERT_TRUE(found.ok());
  std::vector<std::uint8_t> out(payload.size());
  auto got = (*mounted)->read(root, *found, 0, out);
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(*got, payload.size());
  EXPECT_EQ(out, payload);
}

// ---------------------------------------------------------------------
// Event-loop golden-prefix torture: the same crash-at-every-op-index
// discipline, but with the power loss landing inside NvmeEventLoop
// arbitration over a two-tenant trace.  The sequential run (threads=0)
// is the golden; the sharded runs at 2 and 5 threads must produce a
// bit-identical outcome — every completion (cid, status, time), the
// set of lost LBAs, and the recovered L2P table — because the loop
// flushes any batch that would straddle the scheduled power loss and
// replays it through the sequential path.

constexpr std::uint64_t kEvTenants = 2;
constexpr std::uint64_t kEvLbasPerTenant = kNumLbas / kEvTenants;
constexpr std::uint64_t kEvCmdsPerTenant = 48;
constexpr std::uint64_t kEvTraceOps = kEvTenants * kEvCmdsPerTenant;
constexpr std::uint32_t kEvDepth = 4;

/// Tenant `t`'s marker fill for (slba, cid): unique per acknowledged
/// write, so a stale or misdirected block cannot match.
std::uint8_t EvFill(std::uint64_t t, std::uint64_t slba, std::uint16_t cid) {
  return static_cast<std::uint8_t>(0x21 + t * 89 + slba * 13 + cid * 5);
}

struct EvOp {
  bool is_write = false;
  std::uint64_t slba = 0;
};

std::vector<std::vector<EvOp>> EvScripts() {
  std::vector<std::vector<EvOp>> scripts(kEvTenants);
  for (std::uint64_t t = 0; t < kEvTenants; ++t) {
    Rng rng(0xE7'0000 + t);
    scripts[t].resize(kEvCmdsPerTenant);
    for (EvOp& op : scripts[t]) {
      op.is_write = rng.next_below(10) < 6;
      op.slba = rng.next_below(kEvLbasPerTenant);
    }
  }
  return scripts;
}

/// PlRig plus the NVMe stack: controller with one namespace per tenant
/// and per-tenant queue pairs, all rebuilt on reboot (NAND survives).
struct EvRig {
  explicit EvRig(FaultPlan plan) : injector(std::move(plan)) {
    reboot(/*first_boot=*/true);
  }

  void reboot(bool first_boot = false) {
    qps.clear();
    ctrl.reset();
    ftl.reset();
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(dc, MakeLinearMapper(dc.geometry),
                                        clock);
    if (first_boot) {
      nand = std::make_unique<NandDevice>(
          NandGeometry{.channels = 1,
                       .dies_per_channel = 1,
                       .planes_per_die = 1,
                       .blocks_per_plane = 16,
                       .pages_per_block = 16,
                       .page_bytes = kBlockSize});
    }
    FtlConfig config;
    config.num_lbas = kNumLbas;
    config.hammers_per_io = 1;
    config.journal.enabled = true;
    ftl = std::make_unique<Ftl>(config, *nand, *dram);
    ftl->set_fault_injector(&injector);
    NvmeConfig nc;
    for (std::uint64_t t = 0; t < kEvTenants; ++t) {
      nc.namespaces.push_back(
          NvmeNamespaceConfig{Lba(t * kEvLbasPerTenant), kEvLbasPerTenant});
    }
    nc.iops = IopsModel(1e6);
    ctrl = std::make_unique<NvmeController>(nc, *ftl, clock);
    for (std::uint64_t t = 0; t < kEvTenants; ++t) {
      qps.push_back(std::make_unique<NvmeQueuePair>(
          *ctrl, static_cast<std::uint16_t>(t + 1), kEvDepth));
    }
  }

  SimClock clock;
  FaultInjector injector;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
  std::unique_ptr<NvmeController> ctrl;
  std::vector<std::unique_ptr<NvmeQueuePair>> qps;
};

struct EvOutcome {
  std::string failure;          // invariant violation, empty = ok
  std::uint64_t digest = 0;     // FNV-1a over the whole observable run
  std::uint64_t sharded = 0;    // loop.sharded_commands
};

/// Crash the two-tenant event-loop trace at FTL op `crash_index`,
/// reboot + recover, audit acknowledged writes, and fold everything
/// observable into an order-sensitive digest.
EvOutcome RunEvCrashTrial(std::uint64_t crash_index, unsigned threads) {
  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, crash_index);
  EvRig rig(plan);
  const auto scripts = EvScripts();

  EvOutcome res;
  std::uint64_t dig = 1469598103934665603ull;
  const auto fold = [&dig](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      dig ^= (v >> (8 * i)) & 0xFF;
      dig *= 1099511628211ull;
    }
  };

  std::unique_ptr<exec::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<exec::ThreadPool>(threads);
  EventLoopConfig lc;
  lc.seed = 0x5EED;
  lc.sharded = threads > 0;
  lc.pool = pool.get();
  NvmeEventLoop loop(*rig.ctrl, lc);
  for (std::uint64_t t = 0; t < kEvTenants; ++t) {
    loop.attach(*rig.qps[t], /*weight=*/1 + t);
  }

  // last acknowledged write cid per (tenant, slba); ~0u = none tracked.
  std::vector<std::vector<std::uint32_t>> acked(
      kEvTenants, std::vector<std::uint32_t>(kEvLbasPerTenant, ~0u));
  std::vector<std::size_t> next(kEvTenants, 0);
  std::vector<std::uint16_t> cid(kEvTenants, 0);
  std::vector<std::vector<std::uint8_t>> rbuf(
      kEvDepth, std::vector<std::uint8_t>(kBlockSize));
  for (;;) {
    bool pending = false;
    for (std::uint64_t t = 0; t < kEvTenants; ++t) {
      while (next[t] < scripts[t].size()) {
        const EvOp& op = scripts[t][next[t]];
        NvmeCommand cmd =
            op.is_write
                ? NvmeCommand::Write(
                      cid[t], static_cast<std::uint32_t>(t + 1), op.slba,
                      std::vector<std::uint8_t>(
                          kBlockSize, EvFill(t, op.slba, cid[t])))
                : NvmeCommand::Read(cid[t], static_cast<std::uint32_t>(t + 1),
                                    op.slba, rbuf[cid[t] % kEvDepth]);
        if (!rig.qps[t]->submit(std::move(cmd)).ok()) break;
        ++next[t];
        ++cid[t];
      }
      pending = pending || next[t] < scripts[t].size() ||
                rig.qps[t]->sq_inflight() > 0;
    }
    if (!pending) break;
    loop.run_until_idle();
    for (std::uint64_t t = 0; t < kEvTenants; ++t) {
      while (auto cqe = rig.qps[t]->poll()) {
        const EvOp& op = scripts[t][cqe->cid];
        fold(t);
        fold(cqe->cid);
        fold(static_cast<std::uint64_t>(cqe->status.code()));
        fold(cqe->completed_ns);
        if (op.is_write && cqe->status.ok()) acked[t][op.slba] = cqe->cid;
      }
    }
    if (rig.ftl->powered_off()) break;
  }
  res.sharded = loop.stats().sharded_commands;

  if (rig.ftl->powered_off()) {
    // Commands still in flight at the crash were never acknowledged;
    // dropping them with the queue pairs is the correct semantics.
    fold(0xDEADull);
    rig.reboot();
    FtlRecoveryReport report;
    const Status rs = rig.ftl->recover(&report);
    if (!rs.ok()) {
      res.failure = "recover: " + rs.to_string();
      return res;
    }
    std::vector<bool> lost(kNumLbas, false);
    for (const std::uint64_t lba : report.lost_lbas) {
      lost[lba] = true;
      fold(lba);
    }
    // Durability audit: every acknowledged write is intact or named.
    rig.ftl->set_fault_injector(nullptr);
    std::vector<std::uint8_t> out(kBlockSize);
    for (std::uint64_t t = 0; t < kEvTenants; ++t) {
      for (std::uint64_t slba = 0; slba < kEvLbasPerTenant; ++slba) {
        if (acked[t][slba] == ~0u) continue;
        if (lost[t * kEvLbasPerTenant + slba]) continue;
        const Status s =
            rig.ctrl->read(static_cast<std::uint32_t>(t + 1), slba, out);
        const std::uint8_t want =
            EvFill(t, slba, static_cast<std::uint16_t>(acked[t][slba]));
        bool intact = s.ok();
        for (const std::uint8_t b : out) intact = intact && b == want;
        if (!intact) {
          res.failure = "tenant " + std::to_string(t) + " slba " +
                        std::to_string(slba) +
                        ": acknowledged write neither intact nor lost";
          return res;
        }
      }
    }
  }
  // Final mapping state (recovered, or end-of-trace if no crash fired).
  for (std::uint64_t lba = 0; lba < kNumLbas; ++lba) {
    fold(rig.ftl->debug_lookup(Lba(lba)));
  }
  res.digest = dig;
  return res;
}

TEST(PowerLoss, EventLoopTortureIsThreadCountInvariant) {
  exec::ThreadPool pool;  // RHSD_THREADS-sized
  // A few indices past the trace length cover the no-crash path too.
  const std::vector<std::string> failures = exec::RunTrials(
      pool, kEvTraceOps + 4, /*base_seed=*/0,
      [](std::uint64_t crash_index, std::uint64_t) -> std::string {
        const EvOutcome ref = RunEvCrashTrial(crash_index, /*threads=*/0);
        if (!ref.failure.empty()) return "sequential: " + ref.failure;
        for (const unsigned threads : {2u, 5u}) {
          const EvOutcome got = RunEvCrashTrial(crash_index, threads);
          if (!got.failure.empty()) {
            return "threads=" + std::to_string(threads) + ": " + got.failure;
          }
          if (got.digest != ref.digest) {
            return "threads=" + std::to_string(threads) +
                   ": outcome diverged from sequential golden";
          }
        }
        return {};
      });
  for (std::uint64_t k = 0; k < failures.size(); ++k) {
    EXPECT_EQ(failures[k], "") << "crash index " << k;
  }
}

TEST(PowerLoss, EventLoopTortureEngagesShardedPath) {
  // With the crash beyond the trace, the full run completes; the
  // sharded run must have actually drafted batches (the torture above
  // is vacuous if everything silently fell back to sequential).
  const EvOutcome got = RunEvCrashTrial(kEvTraceOps + 1, /*threads=*/2);
  EXPECT_EQ(got.failure, "");
  EXPECT_GT(got.sharded, 0u);
}

}  // namespace
}  // namespace rhsd
