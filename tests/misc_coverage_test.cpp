// Additional coverage: DemoSetup scaling, deep filesystem semantics,
// DRAM inspection edges, and end-to-end outcome classification.
#include <gtest/gtest.h>

#include <memory>

#include "attack/aggressor_finder.hpp"
#include "attack/end_to_end.hpp"
#include "fs/fsck.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

// ---- DemoSetup must yield attackable geometries at any capacity ----

class DemoSetupSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DemoSetupSweep, ProducesCrossPartitionTriples) {
  const SsdConfig config = SsdConfig::DemoSetup(GetParam() * kMiB);
  SsdDevice ssd(config);
  L2pRowMap map(ssd.ftl().layout(), ssd.dram().mapper());
  AggressorFinder finder(map);
  const std::uint64_t half = config.num_lbas() / 2;
  const auto cross = finder.cross_partition_triples(
      LpnRange{half, 2 * half}, LpnRange{0, half});
  EXPECT_GT(cross.size(), 4u) << GetParam() << " MiB";
  // The table must fit the DRAM.
  EXPECT_LE(ssd.ftl().layout().table_bytes(),
            config.dram_geometry.total_bytes());
}

INSTANTIATE_TEST_SUITE_P(Capacities, DemoSetupSweep,
                         ::testing::Values(16, 32, 64, 128, 256));

// ---- Filesystem details ----

TEST(FsDeep, NestedDirectoriesAndTraversalBits) {
  fs::MemBlockDevice dev(1024);
  auto fs = std::move(fs::FileSystem::Format(dev)).value();
  const fs::Credentials root{0};
  const fs::Credentials alice{1000};

  ASSERT_TRUE(fs->mkdir(root, "/a", 0755).ok());
  ASSERT_TRUE(fs->mkdir(root, "/a/b", 0755).ok());
  ASSERT_TRUE(fs->mkdir(root, "/a/b/c", 0700).ok());  // root-only
  ASSERT_TRUE(fs->create(root, "/a/b/c/file", 0644).ok());

  // Alice can resolve through 0755 dirs but not into the 0700 one.
  EXPECT_TRUE(fs->lookup(alice, "/a/b").ok());
  EXPECT_EQ(fs->lookup(alice, "/a/b/c/file").status().code(),
            StatusCode::kPermissionDenied);
  // Root path still works.
  EXPECT_TRUE(fs->lookup(root, "/a/b/c/file").ok());
}

TEST(FsDeep, FileComponentInMiddleOfPathRejected) {
  fs::MemBlockDevice dev(512);
  auto fs = std::move(fs::FileSystem::Format(dev)).value();
  const fs::Credentials root{0};
  ASSERT_TRUE(fs->create(root, "/plain", 0644).ok());
  EXPECT_FALSE(fs->create(root, "/plain/child", 0644).ok());
}

TEST(FsDeep, ReaddirRequiresReadPermission) {
  fs::MemBlockDevice dev(512);
  auto fs = std::move(fs::FileSystem::Format(dev)).value();
  const fs::Credentials root{0};
  const fs::Credentials alice{1000};
  ASSERT_TRUE(fs->mkdir(root, "/private", 0711).ok());
  EXPECT_EQ(fs->readdir(alice, "/private").status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_TRUE(fs->readdir(root, "/private").ok());
}

TEST(FsDeep, SparseIndirectFileSurvivesRemountAndFsck) {
  fs::MemBlockDevice dev(1024);
  {
    auto fs = std::move(fs::FileSystem::Format(dev)).value();
    const fs::Credentials user{1000};
    auto ino =
        fs->create(user, "/sparse", 0644, /*use_extents=*/false);
    ASSERT_TRUE(ino.ok());
    std::vector<std::uint8_t> tail(100, 0xEE);
    ASSERT_TRUE(
        fs->write(user, *ino, 12ull * fs::kFsBlockSize + 7, tail).ok());
  }
  auto fs = std::move(fs::FileSystem::Mount(dev)).value();
  const fs::Credentials user{1000};
  auto ino = fs->lookup(user, "/sparse");
  ASSERT_TRUE(ino.ok());
  std::vector<std::uint8_t> out(100);
  auto n = fs->read(user, *ino, 12ull * fs::kFsBlockSize + 7, out);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, std::vector<std::uint8_t>(100, 0xEE));
  EXPECT_TRUE(fs::Fsck::Check(*fs).clean());
}

// ---- DRAM inspection edges ----

TEST(DramEdge, PeekPokeAcrossRowBoundary) {
  SimClock clock;
  DramConfig config;
  config.geometry = DramGeometry::Tiny();
  config.profile = DramProfile::Invulnerable();
  DramDevice dram(config, MakeLinearMapper(config.geometry), clock);
  std::vector<std::uint8_t> data(300);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  dram.poke(DramAddr(100), data);  // spans rows 0,1,2 (128 B rows)
  std::vector<std::uint8_t> out(300);
  dram.peek(DramAddr(100), out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(dram.stats().activations, 0u);
}

TEST(DramEdge, FlipEventsAreTimeOrdered) {
  SimClock clock;
  DramConfig config;
  config.geometry = DramGeometry::Tiny();
  config.profile = test::EasyFlipProfile();
  config.seed = 3;
  DramDevice dram(config, MakeLinearMapper(config.geometry), clock);
  std::uint8_t byte;
  for (int window = 0; window < 3; ++window) {
    for (int i = 0; i < 4000; ++i) {
      ASSERT_TRUE(dram.read(DramAddr(1 * 128), {&byte, 1}).ok());
      ASSERT_TRUE(dram.read(DramAddr(3 * 128), {&byte, 1}).ok());
    }
    // Rewrite row 2 so its cells recharge for the next window.
    std::vector<std::uint8_t> fresh(128, 0xFF);
    dram.poke(DramAddr(2 * 128), fresh);
    clock.advance_seconds(0.065);
  }
  std::uint64_t prev = 0;
  for (const FlipEvent& e : dram.flip_events()) {
    EXPECT_GE(e.time_ns, prev);
    prev = e.time_ns;
  }
  EXPECT_GT(dram.flip_events().size(), 1u);
}

// ---- End-to-end outcome classification ----

TEST(Outcomes, EccTurnsTheExploitIntoDetectedCorruption) {
  SsdConfig config = test::SmallSsd();
  config.dram_mitigations.ecc = true;
  CloudHost host(config);
  auto secret = test::MarkedBlock("ECC-GUARDED");
  RHSD_CHECK(host.install_secret("/s", secret).ok());
  EndToEndConfig attack;
  attack.files_per_cycle = 200;
  attack.max_cycles = 6;
  attack.hammer_seconds_per_triple = 0.02;
  attack.max_triples_per_cycle = 0;
  attack.targets_per_cycle = 64;
  attack.dump_blocks = 64;
  attack.sweep_targets = false;
  const char* marker = "ECC-GUARDED";
  attack.secret_marker.assign(marker, marker + 11);
  EndToEndAttack e2e(host, attack);
  auto report = e2e.run();
  ASSERT_TRUE(report.ok());
  // No leak; single-bit flips are corrected, double flips become
  // detected errors that may abort the loop as "fs corrupted".
  EXPECT_FALSE(report->success);
  if (report->victim_fs_corrupted) {
    EXPECT_FALSE(report->corruption_detail.empty());
  }
}

TEST(Outcomes, ReportExposesCorruptionDetail) {
  // Force the corruption path cheaply: forbid-indirect FS triggers
  // the PermissionDenied path instead (covered elsewhere), so here we
  // verify the happy path leaves the flags clear.
  CloudHost host(test::SmallSsd());
  auto secret = test::MarkedBlock("CLEAN-RUN");
  RHSD_CHECK(host.install_secret("/s", secret).ok());
  EndToEndConfig attack;
  attack.files_per_cycle = 100;
  attack.max_cycles = 1;
  attack.hammer_seconds_per_triple = 0.005;
  attack.max_triples_per_cycle = 4;
  attack.targets_per_cycle = 64;
  attack.dump_blocks = 16;
  attack.sweep_targets = false;
  const char* marker = "CLEAN-RUN";
  attack.secret_marker.assign(marker, marker + 9);
  EndToEndAttack e2e(host, attack);
  auto report = e2e.run();
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->victim_fs_corrupted);
  EXPECT_TRUE(report->corruption_detail.empty());
}

}  // namespace
}  // namespace rhsd
