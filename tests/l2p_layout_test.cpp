// Tests for L2P table layouts: the linear SPDK-style array and the
// keyed Feistel permutation (hash-table / §5 randomization stand-in).
#include <gtest/gtest.h>

#include <set>

#include "ftl/l2p_layout.hpp"

namespace rhsd {
namespace {

TEST(LinearLayout, EntryAddressesAreContiguous) {
  LinearL2pLayout layout(DramAddr(0x1000), 256);
  for (std::uint64_t lpn = 0; lpn < 256; ++lpn) {
    EXPECT_EQ(layout.entry_addr(lpn).value(), 0x1000 + lpn * 4);
  }
  EXPECT_EQ(layout.table_bytes(), 1024u);
}

TEST(LinearLayout, InverseRecoversLpn) {
  LinearL2pLayout layout(DramAddr(0x1000), 256);
  for (std::uint64_t lpn = 0; lpn < 256; ++lpn) {
    const auto back = layout.lpn_of_entry(layout.entry_addr(lpn));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, lpn);
  }
}

TEST(LinearLayout, InverseRejectsOutsideAndMisaligned) {
  LinearL2pLayout layout(DramAddr(0x1000), 256);
  EXPECT_FALSE(layout.lpn_of_entry(DramAddr(0x0FFC)).has_value());
  EXPECT_FALSE(layout.lpn_of_entry(DramAddr(0x1002)).has_value());
  EXPECT_FALSE(
      layout.lpn_of_entry(DramAddr(0x1000 + 256 * 4)).has_value());
}

class HashedLayoutSizes : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HashedLayoutSizes, PermutationIsABijectionWithinTable) {
  const std::uint64_t n = GetParam();
  HashedL2pLayout layout(DramAddr(0), n, /*device_key=*/0xC0FFEE);
  std::set<std::uint64_t> slots;
  for (std::uint64_t lpn = 0; lpn < n; ++lpn) {
    const DramAddr addr = layout.entry_addr(lpn);
    EXPECT_LT(addr.value(), layout.table_bytes());
    EXPECT_EQ(addr.value() % L2pLayout::kEntryBytes, 0u);
    EXPECT_TRUE(slots.insert(addr.value()).second)
        << "collision for lpn " << lpn;
    const auto back = layout.lpn_of_entry(addr);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, lpn);
  }
  EXPECT_EQ(slots.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, HashedLayoutSizes,
                         ::testing::Values(4, 16, 100, 256, 1000, 4096,
                                           5000));

TEST(HashedLayout, DifferentKeysGiveDifferentPlacements) {
  HashedL2pLayout a(DramAddr(0), 1024, 1);
  HashedL2pLayout b(DramAddr(0), 1024, 2);
  int differing = 0;
  for (std::uint64_t lpn = 0; lpn < 1024; ++lpn) {
    if (a.entry_addr(lpn) != b.entry_addr(lpn)) ++differing;
  }
  // A keyed permutation should disagree almost everywhere.
  EXPECT_GT(differing, 1000);
}

TEST(HashedLayout, ScattersSequentialLpns) {
  // §5: randomization thwarts offline placement planning — consecutive
  // LPNs must not be placed contiguously.
  HashedL2pLayout layout(DramAddr(0), 4096, 0xABCD);
  int adjacent = 0;
  for (std::uint64_t lpn = 0; lpn + 1 < 4096; ++lpn) {
    const std::uint64_t d =
        layout.entry_addr(lpn + 1).value() > layout.entry_addr(lpn).value()
            ? layout.entry_addr(lpn + 1).value() -
                  layout.entry_addr(lpn).value()
            : layout.entry_addr(lpn).value() -
                  layout.entry_addr(lpn + 1).value();
    if (d == L2pLayout::kEntryBytes) ++adjacent;
  }
  EXPECT_LT(adjacent, 40);  // ~1% by chance
}

TEST(HashedLayout, DeterministicPerKey) {
  HashedL2pLayout a(DramAddr(64), 512, 99);
  HashedL2pLayout b(DramAddr(64), 512, 99);
  for (std::uint64_t lpn = 0; lpn < 512; ++lpn) {
    EXPECT_EQ(a.entry_addr(lpn), b.entry_addr(lpn));
  }
}

TEST(HashedLayout, RespectsBaseOffset) {
  HashedL2pLayout layout(DramAddr(0x2000), 128, 7);
  for (std::uint64_t lpn = 0; lpn < 128; ++lpn) {
    EXPECT_GE(layout.entry_addr(lpn).value(), 0x2000u);
    EXPECT_LT(layout.entry_addr(lpn).value(), 0x2000u + 128 * 4);
  }
}

TEST(MakeL2pLayout, FactoryDispatch) {
  auto linear = MakeL2pLayout(L2pLayoutKind::kLinear, DramAddr(0), 64);
  auto hashed = MakeL2pLayout(L2pLayoutKind::kHashed, DramAddr(0), 64, 5);
  EXPECT_NE(dynamic_cast<LinearL2pLayout*>(linear.get()), nullptr);
  EXPECT_NE(dynamic_cast<HashedL2pLayout*>(hashed.get()), nullptr);
}

TEST(L2pLayout, RejectsEmptyTable) {
  EXPECT_THROW(LinearL2pLayout(DramAddr(0), 0), CheckFailure);
}

TEST(L2pLayout, EntryAddrOutOfRangeThrows) {
  LinearL2pLayout layout(DramAddr(0), 16);
  EXPECT_THROW((void)layout.entry_addr(16), CheckFailure);
}

}  // namespace
}  // namespace rhsd
