// Tests for the NAND flash model: erase-before-program, sequential
// programming, OOB metadata, wear and bad-block handling.
#include <gtest/gtest.h>

#include "nand/nand_device.hpp"

namespace rhsd {
namespace {

NandGeometry SmallGeometry() {
  return NandGeometry{.channels = 1,
                      .dies_per_channel = 1,
                      .planes_per_die = 1,
                      .blocks_per_plane = 8,
                      .pages_per_block = 4,
                      .page_bytes = kBlockSize};
}

std::vector<std::uint8_t> Page(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(NandGeometry, Counts) {
  const NandGeometry g = SmallGeometry();
  EXPECT_EQ(g.total_blocks(), 8u);
  EXPECT_EQ(g.total_pages(), 32u);
  EXPECT_EQ(g.total_bytes(), 32u * kBlockSize);
}

TEST(NandGeometry, ForCapacityCoversRequestPlusOp) {
  const auto g = NandGeometry::ForCapacity(1 * kGiB, 0.125);
  EXPECT_GE(g.total_bytes(), static_cast<std::uint64_t>(1.125 * kGiB));
  // Not wildly oversized either (within one allocation unit).
  const std::uint64_t unit = static_cast<std::uint64_t>(
      g.pages_per_block) * g.page_bytes *
      (g.channels * g.dies_per_channel * g.planes_per_die);
  EXPECT_LT(g.total_bytes(), static_cast<std::uint64_t>(1.125 * kGiB) +
                                 unit);
}

TEST(Nand, ProgramAndRead) {
  NandDevice nand(SmallGeometry());
  const auto data = Page(0x5A);
  ASSERT_TRUE(nand.program(0, 0, data, PageOob{42, 1}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  PageOob oob;
  ASSERT_TRUE(nand.read(0, 0, out, &oob).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(oob.lpn, 42u);
  EXPECT_EQ(oob.write_seq, 1u);
}

TEST(Nand, ErasedPagesReadAllOnes) {
  NandDevice nand(SmallGeometry());
  std::vector<std::uint8_t> out(kBlockSize, 0);
  PageOob oob;
  ASSERT_TRUE(nand.read(3, 2, out, &oob).ok());
  for (auto b : out) EXPECT_EQ(b, 0xFF);
  EXPECT_EQ(oob.lpn, PageOob::kNoLpn);
}

TEST(Nand, SequentialProgramRuleEnforced) {
  NandDevice nand(SmallGeometry());
  // Page 1 before page 0: rejected.
  EXPECT_EQ(nand.program(0, 1, Page(1), {}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  // Re-programming page 0 without erase: rejected.
  EXPECT_EQ(nand.program(0, 0, Page(2), {}).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(nand.program(0, 1, Page(2), {}).ok());
  EXPECT_EQ(nand.stats().program_violations, 2u);
}

TEST(Nand, WritePointerTracksProgress) {
  NandDevice nand(SmallGeometry());
  EXPECT_EQ(nand.write_pointer(0), 0u);
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  ASSERT_TRUE(nand.program(0, 1, Page(2), {}).ok());
  EXPECT_EQ(nand.write_pointer(0), 2u);
  ASSERT_TRUE(nand.erase(0).ok());
  EXPECT_EQ(nand.write_pointer(0), 0u);
}

TEST(Nand, EraseClearsDataAndOob) {
  NandDevice nand(SmallGeometry());
  ASSERT_TRUE(nand.program(1, 0, Page(0xAA), PageOob{7, 9}).ok());
  ASSERT_TRUE(nand.erase(1).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  PageOob oob;
  ASSERT_TRUE(nand.read(1, 0, out, &oob).ok());
  EXPECT_EQ(out[0], 0xFF);
  EXPECT_EQ(oob.lpn, PageOob::kNoLpn);
  // And the block is programmable again from page 0.
  EXPECT_TRUE(nand.program(1, 0, Page(0xBB), {}).ok());
}

TEST(Nand, EraseCountsWear) {
  NandDevice nand(SmallGeometry());
  EXPECT_EQ(nand.erase_count(2), 0u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(nand.erase(2).ok());
  EXPECT_EQ(nand.erase_count(2), 5u);
  EXPECT_EQ(nand.stats().erases, 5u);
}

TEST(Nand, BlockGoesBadAtPeCycleLimit) {
  NandDevice nand(SmallGeometry(), NandLatency{}, /*max_pe_cycles=*/3);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(nand.erase(0).ok());
  EXPECT_TRUE(nand.is_bad(0));
  EXPECT_EQ(nand.program(0, 0, Page(1), {}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(nand.erase(0).code(), StatusCode::kFailedPrecondition);
  // Other blocks unaffected.
  EXPECT_FALSE(nand.is_bad(1));
}

TEST(Nand, FlatPbaHelpers) {
  NandDevice nand(SmallGeometry());
  const Pba pba = nand.make_pba(2, 3);
  EXPECT_EQ(pba.value(), 2u * 4 + 3);
  EXPECT_EQ(nand.block_of(pba), 2u);
  EXPECT_EQ(nand.page_of(pba), 3u);
  ASSERT_TRUE(nand.program(2, 0, Page(1), {}).ok());
  ASSERT_TRUE(nand.program(2, 1, Page(2), {}).ok());
  ASSERT_TRUE(nand.program(2, 2, Page(3), {}).ok());
  ASSERT_TRUE(nand.program_pba(pba, Page(4), PageOob{11, 2}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(nand.read_pba(pba, out).ok());
  EXPECT_EQ(out[0], 4);
}

TEST(Nand, BoundsChecked) {
  NandDevice nand(SmallGeometry());
  std::vector<std::uint8_t> out(kBlockSize);
  EXPECT_EQ(nand.read(8, 0, out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(nand.read(0, 4, out).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(nand.erase(99).code(), StatusCode::kOutOfRange);
}

TEST(Nand, SizeMismatchRejected) {
  NandDevice nand(SmallGeometry());
  std::vector<std::uint8_t> small(16);
  EXPECT_EQ(nand.program(0, 0, small, {}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(nand.read(0, 0, small).code(), StatusCode::kInvalidArgument);
}

TEST(Nand, StatsCount) {
  NandDevice nand(SmallGeometry());
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(nand.read(0, 0, out).ok());
  ASSERT_TRUE(nand.read(0, 1, out).ok());
  ASSERT_TRUE(nand.erase(0).ok());
  EXPECT_EQ(nand.stats().programs, 1u);
  EXPECT_EQ(nand.stats().reads, 2u);
  EXPECT_EQ(nand.stats().erases, 1u);
}

}  // namespace
}  // namespace rhsd
