// Firmware reactions to injected physical faults: NAND read-retry,
// program-failure block retirement, erase-failure bad-block growth with
// graceful degradation to read-only, DRAM soft errors (raw and under
// SECDED), and the journal-backed integrity scrub.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_injector.hpp"
#include "ftl/ftl.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

struct FaultRig {
  explicit FaultRig(FaultPlan plan, FtlConfig config = DefaultConfig(),
                    std::uint32_t blocks = 16)
      : injector(std::move(plan)) {
    DramConfig dc;
    dc.geometry = test::SmallDram();
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(
        dc, MakeLinearMapper(dc.geometry), clock);
    nand = std::make_unique<NandDevice>(
        NandGeometry{.channels = 1,
                     .dies_per_channel = 1,
                     .planes_per_die = 1,
                     .blocks_per_plane = blocks,
                     .pages_per_block = 16,
                     .page_bytes = kBlockSize});
    dram->set_fault_injector(&injector);
    nand->set_fault_injector(&injector);
    ftl = std::make_unique<Ftl>(config, *nand, *dram);
    ftl->set_fault_injector(&injector);
  }

  static FtlConfig DefaultConfig() {
    FtlConfig c;
    c.num_lbas = 64;
    c.hammers_per_io = 1;
    return c;
  }

  static FtlConfig JournalConfig() {
    FtlConfig c = DefaultConfig();
    c.journal.enabled = true;
    return c;
  }

  SimClock clock;
  FaultInjector injector;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
};

std::vector<std::uint8_t> Block(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(FaultRecovery, ReadRetryRecoversTransientMediaError) {
  FaultPlan plan;
  plan.add(FaultClass::kNandRead, /*op_index=*/0, /*count=*/1);
  FaultRig rig(plan);
  ASSERT_TRUE(rig.ftl->write(Lba(7), Block(0x7A)).ok());

  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(7), out).ok());
  EXPECT_EQ(out, Block(0x7A));
  EXPECT_EQ(rig.ftl->stats().read_retries, 1u);
  EXPECT_EQ(rig.ftl->stats().read_retry_successes, 1u);
  EXPECT_EQ(rig.nand->stats().injected_read_faults, 1u);
}

TEST(FaultRecovery, PersistentReadFaultSurfacesCorruption) {
  FaultPlan plan;
  // Initial attempt + read_retry_max (2) retries, all faulted.
  plan.add(FaultClass::kNandRead, 0, /*count=*/3);
  FaultRig rig(plan);
  ASSERT_TRUE(rig.ftl->write(Lba(7), Block(0x7A)).ok());

  std::vector<std::uint8_t> out(kBlockSize);
  EXPECT_EQ(rig.ftl->read(Lba(7), out).code(), StatusCode::kCorruption);
  EXPECT_EQ(rig.ftl->stats().read_retries, 2u);
  EXPECT_EQ(rig.ftl->stats().read_retry_successes, 0u);
}

TEST(FaultRecovery, ProgramFaultRetiresBlockAndWriteSucceeds) {
  FaultPlan plan;
  plan.add(FaultClass::kNandProgram, /*op_index=*/0, /*count=*/1);
  FaultRig rig(plan);  // 16 blocks: plenty of spares

  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0xC3)).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(1), out).ok());
  EXPECT_EQ(out, Block(0xC3));

  EXPECT_EQ(rig.nand->stats().injected_program_faults, 1u);
  EXPECT_EQ(rig.nand->stats().grown_bad_blocks, 1u);
  EXPECT_EQ(rig.ftl->stats().retired_blocks, 1u);
  EXPECT_FALSE(rig.ftl->read_only());  // spares absorbed the loss
}

TEST(FaultRecovery, RetirementRelocatesLiveData) {
  // Fault the program of LBA 9's overwrite: the victim block already
  // holds earlier live pages, which retirement must carry over.
  FaultPlan plan;
  plan.add(FaultClass::kNandProgram, /*op_index=*/3, /*count=*/1);
  FaultRig rig(plan);
  ASSERT_TRUE(rig.ftl->write(Lba(1), Block(0x11)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(2), Block(0x22)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(3), Block(0x33)).ok());
  ASSERT_TRUE(rig.ftl->write(Lba(9), Block(0x99)).ok());  // faulted program

  EXPECT_EQ(rig.ftl->stats().retired_blocks, 1u);
  std::vector<std::uint8_t> out(kBlockSize);
  const std::pair<std::uint64_t, std::uint8_t> expected[] = {
      {1, 0x11}, {2, 0x22}, {3, 0x33}, {9, 0x99}};
  for (const auto& [lba, fill] : expected) {
    ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok()) << lba;
    EXPECT_EQ(out, Block(fill)) << lba;
  }
}

TEST(FaultRecovery, EraseFaultDegradesToReadOnlyAtTheSpareFloor) {
  // 8 data blocks is exactly the floor (4 capacity + 3 GC watermark +
  // 1): the first grown bad block tips the device into read-only.
  FaultPlan plan;
  plan.add(FaultClass::kNandErase, /*op_index=*/0, /*count=*/1);
  FaultRig rig(plan, FaultRig::DefaultConfig(), /*blocks=*/8);

  // Fill the device, then overwrite until GC needs to erase a victim.
  Status ws = Status::Ok();
  for (int round = 0; ws.ok() && round < 64; ++round) {
    for (std::uint64_t lba = 0; lba < 64 && ws.ok(); ++lba) {
      ws = rig.ftl->write(Lba(lba), Block(static_cast<std::uint8_t>(lba)));
    }
  }
  ASSERT_EQ(rig.nand->stats().injected_erase_faults, 1u);
  ASSERT_TRUE(rig.ftl->read_only());
  EXPECT_EQ(rig.ftl->spare_data_blocks(), 0u);

  // Mutations now fail fast; reads keep working.
  EXPECT_EQ(rig.ftl->write(Lba(0), Block(1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(rig.ftl->trim(Lba(0)).code(),
            StatusCode::kFailedPrecondition);
  std::vector<std::uint8_t> out(kBlockSize);
  for (std::uint64_t lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(rig.ftl->read(Lba(lba), out).ok()) << lba;
    EXPECT_EQ(out, Block(static_cast<std::uint8_t>(lba))) << lba;
  }
}

TEST(FaultRecovery, DramBitErrorFlipsExactlyTheChosenBit) {
  SimClock clock;
  DramConfig dc;
  dc.geometry = test::SmallDram();
  dc.profile = DramProfile::Invulnerable();
  DramDevice dram(dc, MakeLinearMapper(dc.geometry), clock);
  FaultPlan plan;
  plan.add(FaultClass::kDramBitError, /*op_index=*/1, /*count=*/1,
           /*param=*/(5u << 3) | 2u);  // byte 5, bit 2
  FaultInjector injector(plan);
  dram.set_fault_injector(&injector);

  std::vector<std::uint8_t> data(16, 0x00);
  ASSERT_TRUE(dram.write(DramAddr(0), data).ok());
  std::vector<std::uint8_t> out(16);
  ASSERT_TRUE(dram.read(DramAddr(0), out).ok());  // op 0: clean
  EXPECT_EQ(out, data);
  ASSERT_TRUE(dram.read(DramAddr(0), out).ok());  // op 1: faulted
  EXPECT_EQ(out[5], 0x04);
  out[5] = 0;
  EXPECT_EQ(out, data);
  EXPECT_EQ(dram.stats().injected_bit_errors, 1u);
}

TEST(FaultRecovery, SecdedCorrectsInjectedSoftError) {
  SimClock clock;
  DramConfig dc;
  dc.geometry = test::SmallDram();
  dc.profile = DramProfile::Invulnerable();
  dc.mitigations.ecc = true;
  DramDevice dram(dc, MakeLinearMapper(dc.geometry), clock);
  FaultPlan plan;
  plan.add(FaultClass::kDramBitError, 1, 1, (3u << 3) | 7u);
  FaultInjector injector(plan);
  dram.set_fault_injector(&injector);

  std::vector<std::uint8_t> data(16, 0xA5);
  ASSERT_TRUE(dram.write(DramAddr(0), data).ok());
  std::vector<std::uint8_t> out(16);
  ASSERT_TRUE(dram.read(DramAddr(0), out).ok());
  const std::uint64_t corrected_before = dram.stats().ecc_corrected;
  ASSERT_TRUE(dram.read(DramAddr(0), out).ok());  // faulted, corrected
  EXPECT_EQ(out, data);
  EXPECT_EQ(dram.stats().injected_bit_errors, 1u);
  EXPECT_GT(dram.stats().ecc_corrected, corrected_before);
}

TEST(FaultRecovery, ScrubRepairsCorruptedMapping) {
  FaultRig rig(FaultPlan{}, FaultRig::JournalConfig());
  for (std::uint64_t lba = 0; lba < 10; ++lba) {
    ASSERT_TRUE(
        rig.ftl->write(Lba(lba), Block(static_cast<std::uint8_t>(lba + 1)))
            .ok());
  }
  // Simulate a hammer flip landing in the L2P entry of LBA 3.
  const std::uint32_t good = rig.ftl->debug_lookup(Lba(3));
  rig.ftl->debug_store(Lba(3), good ^ 0x40);

  std::uint64_t repaired = 0;
  ASSERT_TRUE(rig.ftl->scrub(&repaired).ok());
  EXPECT_EQ(repaired, 1u);
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(3)), good);
  EXPECT_EQ(rig.ftl->stats().scrub_repairs, 1u);

  std::vector<std::uint8_t> out(kBlockSize);
  ASSERT_TRUE(rig.ftl->read(Lba(3), out).ok());
  EXPECT_EQ(out, Block(4));

  // A clean table scrubs to zero repairs.
  ASSERT_TRUE(rig.ftl->scrub(&repaired).ok());
  EXPECT_EQ(repaired, 0u);
}

TEST(FaultRecovery, PeriodicScrubRunsAndRepairsAutomatically) {
  FtlConfig config = FaultRig::JournalConfig();
  config.scrub_interval_ios = 4;
  FaultRig rig(FaultPlan{}, config);
  for (std::uint64_t lba = 0; lba < 3; ++lba) {
    ASSERT_TRUE(rig.ftl->write(Lba(lba), Block(0x55)).ok());
  }
  const std::uint32_t good = rig.ftl->debug_lookup(Lba(1));
  rig.ftl->debug_store(Lba(1), good ^ 1);

  std::vector<std::uint8_t> out(kBlockSize);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(rig.ftl->read(Lba(2), out).ok());
  }
  EXPECT_GE(rig.ftl->stats().scrub_runs, 1u);
  EXPECT_EQ(rig.ftl->stats().scrub_repairs, 1u);
  EXPECT_EQ(rig.ftl->debug_lookup(Lba(1)), good);
}

TEST(FaultRecovery, ScrubWithoutJournalIsRejected) {
  FaultRig rig(FaultPlan{});  // journal disabled
  EXPECT_EQ(rig.ftl->scrub().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace rhsd
