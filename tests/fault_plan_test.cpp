// FaultPlan::Random scheduling semantics, focused on the power-loss
// stream: rates above 1.0 must schedule floor(rate) losses plus one
// more with probability frac(rate) — not silently clamp to a single
// Bernoulli draw — while rates at or below 1.0 keep the legacy
// single-draw stream so old (seed, rate) plans replay unchanged.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "fault/fault_plan.hpp"

namespace rhsd {
namespace {

std::vector<std::uint64_t> PowerLossIndices(const FaultPlan& plan) {
  std::vector<std::uint64_t> indices;
  for (const FaultEvent& e : plan.events()) {
    if (e.cls != FaultClass::kPowerLoss) continue;
    EXPECT_EQ(e.count, 1u);
    indices.push_back(e.op_index);
  }
  return indices;
}

TEST(FaultPlan, PowerLossRateOneSchedulesExactlyOne) {
  // frac(1.0) == 0 but the legacy stream drew Bernoulli(1.0), which
  // always fires: rate 1.0 must keep yielding exactly one loss.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    FaultRates rates;
    rates.power_losses = 1.0;
    const auto losses =
        PowerLossIndices(FaultPlan::Random(seed, rates, 10'000));
    ASSERT_EQ(losses.size(), 1u) << "seed " << seed;
    EXPECT_LT(losses[0], 10'000u);
  }
}

TEST(FaultPlan, PowerLossFractionalRateBelowOneIsBernoulli) {
  std::uint64_t total = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    FaultRates rates;
    rates.power_losses = 0.5;
    const auto losses =
        PowerLossIndices(FaultPlan::Random(seed, rates, 10'000));
    ASSERT_LE(losses.size(), 1u) << "seed " << seed;
    total += losses.size();
  }
  // Mean ~0.5; 400 draws put the sample mean well inside [0.4, 0.6].
  EXPECT_GT(total, 160u);
  EXPECT_LT(total, 240u);
}

TEST(FaultPlan, PowerLossRateAboveOneSchedulesFloorPlusBernoulli) {
  std::uint64_t total = 0;
  for (std::uint64_t seed = 1; seed <= 400; ++seed) {
    FaultRates rates;
    rates.power_losses = 2.5;
    const FaultPlan plan = FaultPlan::Random(seed, rates, 10'000);
    const auto losses = PowerLossIndices(plan);
    // floor(2.5) = 2 guaranteed, plus one more with probability 0.5.
    ASSERT_GE(losses.size(), 2u) << "seed " << seed;
    ASSERT_LE(losses.size(), 3u) << "seed " << seed;
    const std::set<std::uint64_t> distinct(losses.begin(), losses.end());
    EXPECT_EQ(distinct.size(), losses.size())
        << "seed " << seed << ": duplicate power-loss index";
    for (const std::uint64_t idx : losses) EXPECT_LT(idx, 10'000u);
    total += losses.size();
  }
  // Mean ~2.5 over 400 seeds.
  EXPECT_GT(total, 400u * 2 + 160);
  EXPECT_LT(total, 400u * 2 + 240);
}

TEST(FaultPlan, PowerLossCountIsCappedByTheHorizon) {
  // More losses than operations cannot fit at distinct indices: the
  // schedule saturates at one loss per op.
  FaultRates rates;
  rates.power_losses = 100.0;
  const auto losses = PowerLossIndices(FaultPlan::Random(3, rates, 8));
  EXPECT_EQ(losses.size(), 8u);
  const std::set<std::uint64_t> distinct(losses.begin(), losses.end());
  EXPECT_EQ(distinct.size(), 8u);
  for (const std::uint64_t idx : losses) EXPECT_LT(idx, 8u);
}

TEST(FaultPlan, PowerLossCountEqualToHorizonCoversEveryOp) {
  // count == horizon is the Floyd-sampler edge where the sample IS the
  // whole range: j starts at 0 and every op index must come out exactly
  // once (the old accept/reject scan went quadratic exactly here).
  FaultRates rates;
  rates.power_losses = 8.0;  // floor == horizon, frac == 0
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto losses = PowerLossIndices(FaultPlan::Random(seed, rates, 8));
    ASSERT_EQ(losses.size(), 8u) << "seed " << seed;
    const std::set<std::uint64_t> distinct(losses.begin(), losses.end());
    EXPECT_EQ(distinct.size(), 8u) << "seed " << seed;
  }
}

TEST(FaultPlan, PowerLossSchedulingIsReproducible) {
  FaultRates rates;
  rates.power_losses = 5.75;
  const auto a = PowerLossIndices(FaultPlan::Random(42, rates, 1000));
  const auto b = PowerLossIndices(FaultPlan::Random(42, rates, 1000));
  EXPECT_EQ(a, b);
  const auto c = PowerLossIndices(FaultPlan::Random(43, rates, 1000));
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace rhsd
