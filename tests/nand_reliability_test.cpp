// Tests for the NAND media-error model and the FTL's page ECC budget
// (the flash-side counterpart to the DRAM disturbance the paper attacks;
// related work [8, 28] attacks these cells directly).
#include <gtest/gtest.h>

#include <memory>

#include "ftl/ftl.hpp"
#include "test_util.hpp"

namespace rhsd {
namespace {

NandGeometry SmallGeometry() {
  return NandGeometry{.channels = 1,
                      .dies_per_channel = 1,
                      .planes_per_die = 1,
                      .blocks_per_plane = 8,
                      .pages_per_block = 16,
                      .page_bytes = kBlockSize};
}

std::vector<std::uint8_t> Page(std::uint8_t fill) {
  return std::vector<std::uint8_t>(kBlockSize, fill);
}

TEST(NandReliabilityModel, DisabledByDefault) {
  NandDevice nand(SmallGeometry());
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  for (int i = 0; i < 200; ++i) {
    std::uint32_t errors = 99;
    ASSERT_TRUE(nand.read(0, 0, out, nullptr, &errors).ok());
    EXPECT_EQ(errors, 0u);
  }
}

TEST(NandReliabilityModel, BaseRberProducesExpectedErrorCounts) {
  NandReliability reliability;
  reliability.base_rber = 1e-4;  // mean ~3.3 errors per 4 KiB page
  NandDevice nand(SmallGeometry(), NandLatency{}, 0, reliability, 7);
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  std::uint64_t total = 0;
  const int reads = 2000;
  for (int i = 0; i < reads; ++i) {
    std::uint32_t errors = 0;
    ASSERT_TRUE(nand.read(0, 0, out, nullptr, &errors).ok());
    total += errors;
  }
  const double mean = static_cast<double>(total) / reads;
  EXPECT_NEAR(mean, 1e-4 * kBlockSize * 8, 0.4);
}

TEST(NandReliabilityModel, WearRaisesErrorRate) {
  NandReliability reliability;
  reliability.base_rber = 1e-5;
  reliability.wear_rber_per_pe = 1e-5;
  auto mean_errors_at_pe = [&](int pe_cycles) {
    NandDevice nand(SmallGeometry(), NandLatency{}, 0, reliability, 7);
    for (int i = 0; i < pe_cycles; ++i) {
      EXPECT_TRUE(nand.erase(0).ok());
    }
    EXPECT_TRUE(nand.program(0, 0, Page(1), {}).ok());
    std::vector<std::uint8_t> out(kBlockSize);
    std::uint64_t total = 0;
    for (int i = 0; i < 1000; ++i) {
      std::uint32_t errors = 0;
      EXPECT_TRUE(nand.read(0, 0, out, nullptr, &errors).ok());
      total += errors;
    }
    return static_cast<double>(total) / 1000.0;
  };
  EXPECT_GT(mean_errors_at_pe(100), mean_errors_at_pe(0) + 1.0);
}

TEST(NandReliabilityModel, ReadDisturbAccumulatesAndErasesReset) {
  NandReliability reliability;
  reliability.read_disturb_rber_per_read = 1e-8;
  NandDevice nand(SmallGeometry(), NandLatency{}, 0, reliability, 7);
  ASSERT_TRUE(nand.program(0, 0, Page(1), {}).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(nand.read(0, 0, out).ok());
  }
  EXPECT_EQ(nand.reads_since_erase(0), 5000u);
  // At 5000 reads the per-read RBER is 5e-5 => ~1.6 errors/page.
  std::uint64_t total = 0;
  for (int i = 0; i < 500; ++i) {
    std::uint32_t errors = 0;
    ASSERT_TRUE(nand.read(0, 0, out, nullptr, &errors).ok());
    total += errors;
  }
  EXPECT_GT(total, 200u);
  ASSERT_TRUE(nand.erase(0).ok());
  EXPECT_EQ(nand.reads_since_erase(0), 0u);
}

TEST(FtlFlashEcc, BudgetSeparatesCorrectableFromFatal) {
  SimClock clock;
  DramConfig dc;
  dc.geometry = test::SmallDram();
  dc.profile = DramProfile::Invulnerable();
  DramDevice dram(dc, MakeLinearMapper(dc.geometry), clock);
  NandReliability reliability;
  reliability.base_rber = 2e-4;  // mean ~6.5 raw errors per page
  NandDevice nand(SmallGeometry(), NandLatency{}, 0, reliability, 11);
  FtlConfig fc;
  fc.num_lbas = 64;
  fc.page_ecc_correctable_bits = 40;  // plenty: reads succeed
  Ftl ftl(fc, nand, dram);
  ASSERT_TRUE(ftl.write(Lba(1), Page(0x5A)).ok());
  std::vector<std::uint8_t> out(kBlockSize);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(ftl.read(Lba(1), out).ok());
  }
  EXPECT_GT(ftl.stats().flash_raw_bit_errors, 500u);
  EXPECT_EQ(ftl.stats().flash_ecc_uncorrectable, 0u);
  EXPECT_EQ(out, Page(0x5A));  // always corrected

  // A tiny budget makes the same media unusable.
  SimClock clock2;
  DramDevice dram2(dc, MakeLinearMapper(dc.geometry), clock2);
  NandDevice nand2(SmallGeometry(), NandLatency{}, 0, reliability, 11);
  fc.page_ecc_correctable_bits = 2;
  Ftl ftl2(fc, nand2, dram2);
  ASSERT_TRUE(ftl2.write(Lba(1), Page(0x5A)).ok());
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!ftl2.read(Lba(1), out).ok()) ++failures;
  }
  EXPECT_GT(failures, 100);
  EXPECT_GT(ftl2.stats().flash_ecc_uncorrectable, 100u);
}

TEST(FtlFlashEcc, DeterministicPerSeed) {
  NandReliability reliability;
  reliability.base_rber = 1e-4;
  auto total_for_seed = [&](std::uint64_t seed) {
    NandDevice nand(SmallGeometry(), NandLatency{}, 0, reliability, seed);
    EXPECT_TRUE(nand.program(0, 0, Page(1), {}).ok());
    std::vector<std::uint8_t> out(kBlockSize);
    std::uint64_t total = 0;
    for (int i = 0; i < 300; ++i) {
      std::uint32_t errors = 0;
      EXPECT_TRUE(nand.read(0, 0, out, nullptr, &errors).ok());
      total += errors;
    }
    return total;
  };
  EXPECT_EQ(total_for_seed(5), total_for_seed(5));
  EXPECT_NE(total_for_seed(5), total_for_seed(6));
}

TEST(NandReliabilityModel, RejectsNegativeRates) {
  NandReliability reliability;
  reliability.base_rber = -1.0;
  EXPECT_THROW(
      NandDevice(SmallGeometry(), NandLatency{}, 0, reliability, 1),
      CheckFailure);
}

}  // namespace
}  // namespace rhsd
