# Empty dependencies file for bench_table1_min_rates.
# This may be replaced when dependencies are built.
