file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_min_rates.dir/bench/bench_table1_min_rates.cpp.o"
  "CMakeFiles/bench_table1_min_rates.dir/bench/bench_table1_min_rates.cpp.o.d"
  "bench/bench_table1_min_rates"
  "bench/bench_table1_min_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_min_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
