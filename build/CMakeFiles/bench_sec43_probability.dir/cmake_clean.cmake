file(REMOVE_RECURSE
  "CMakeFiles/bench_sec43_probability.dir/bench/bench_sec43_probability.cpp.o"
  "CMakeFiles/bench_sec43_probability.dir/bench/bench_sec43_probability.cpp.o.d"
  "bench/bench_sec43_probability"
  "bench/bench_sec43_probability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec43_probability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
