file(REMOVE_RECURSE
  "CMakeFiles/bench_sec32_outcomes.dir/bench/bench_sec32_outcomes.cpp.o"
  "CMakeFiles/bench_sec32_outcomes.dir/bench/bench_sec32_outcomes.cpp.o.d"
  "bench/bench_sec32_outcomes"
  "bench/bench_sec32_outcomes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec32_outcomes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
