file(REMOVE_RECURSE
  "CMakeFiles/bench_ftl_behaviour.dir/bench/bench_ftl_behaviour.cpp.o"
  "CMakeFiles/bench_ftl_behaviour.dir/bench/bench_ftl_behaviour.cpp.o.d"
  "bench/bench_ftl_behaviour"
  "bench/bench_ftl_behaviour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ftl_behaviour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
