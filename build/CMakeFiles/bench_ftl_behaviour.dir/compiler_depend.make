# Empty compiler generated dependencies file for bench_ftl_behaviour.
# This may be replaced when dependencies are built.
