# Empty compiler generated dependencies file for bench_mitigations.
# This may be replaced when dependencies are built.
