
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_layout_ablation.cpp" "CMakeFiles/bench_layout_ablation.dir/bench/bench_layout_ablation.cpp.o" "gcc" "CMakeFiles/bench_layout_ablation.dir/bench/bench_layout_ablation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_mitigations.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
