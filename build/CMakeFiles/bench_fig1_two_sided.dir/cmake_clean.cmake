file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_two_sided.dir/bench/bench_fig1_two_sided.cpp.o"
  "CMakeFiles/bench_fig1_two_sided.dir/bench/bench_fig1_two_sided.cpp.o.d"
  "bench/bench_fig1_two_sided"
  "bench/bench_fig1_two_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_two_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
