# Empty compiler generated dependencies file for bench_fig1_two_sided.
# This may be replaced when dependencies are built.
