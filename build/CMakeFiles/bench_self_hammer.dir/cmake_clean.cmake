file(REMOVE_RECURSE
  "CMakeFiles/bench_self_hammer.dir/bench/bench_self_hammer.cpp.o"
  "CMakeFiles/bench_self_hammer.dir/bench/bench_self_hammer.cpp.o.d"
  "bench/bench_self_hammer"
  "bench/bench_self_hammer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_self_hammer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
