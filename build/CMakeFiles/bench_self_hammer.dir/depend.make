# Empty dependencies file for bench_self_hammer.
# This may be replaced when dependencies are built.
