file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_setups.dir/bench/bench_fig2_setups.cpp.o"
  "CMakeFiles/bench_fig2_setups.dir/bench/bench_fig2_setups.cpp.o.d"
  "bench/bench_fig2_setups"
  "bench/bench_fig2_setups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_setups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
