file(REMOVE_RECURSE
  "CMakeFiles/bench_feasibility_matrix.dir/bench/bench_feasibility_matrix.cpp.o"
  "CMakeFiles/bench_feasibility_matrix.dir/bench/bench_feasibility_matrix.cpp.o.d"
  "bench/bench_feasibility_matrix"
  "bench/bench_feasibility_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feasibility_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
