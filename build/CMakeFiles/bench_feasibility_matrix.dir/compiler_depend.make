# Empty compiler generated dependencies file for bench_feasibility_matrix.
# This may be replaced when dependencies are built.
