file(REMOVE_RECURSE
  "CMakeFiles/queue_pair_test.dir/queue_pair_test.cpp.o"
  "CMakeFiles/queue_pair_test.dir/queue_pair_test.cpp.o.d"
  "queue_pair_test"
  "queue_pair_test.pdb"
  "queue_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
