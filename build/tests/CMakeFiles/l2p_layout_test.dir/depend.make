# Empty dependencies file for l2p_layout_test.
# This may be replaced when dependencies are built.
