file(REMOVE_RECURSE
  "CMakeFiles/l2p_layout_test.dir/l2p_layout_test.cpp.o"
  "CMakeFiles/l2p_layout_test.dir/l2p_layout_test.cpp.o.d"
  "l2p_layout_test"
  "l2p_layout_test.pdb"
  "l2p_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/l2p_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
