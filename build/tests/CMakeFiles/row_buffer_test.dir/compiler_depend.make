# Empty compiler generated dependencies file for row_buffer_test.
# This may be replaced when dependencies are built.
