file(REMOVE_RECURSE
  "CMakeFiles/row_buffer_test.dir/row_buffer_test.cpp.o"
  "CMakeFiles/row_buffer_test.dir/row_buffer_test.cpp.o.d"
  "row_buffer_test"
  "row_buffer_test.pdb"
  "row_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/row_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
