file(REMOVE_RECURSE
  "CMakeFiles/address_mapper_test.dir/address_mapper_test.cpp.o"
  "CMakeFiles/address_mapper_test.dir/address_mapper_test.cpp.o.d"
  "address_mapper_test"
  "address_mapper_test.pdb"
  "address_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
