file(REMOVE_RECURSE
  "CMakeFiles/disturbance_test.dir/disturbance_test.cpp.o"
  "CMakeFiles/disturbance_test.dir/disturbance_test.cpp.o.d"
  "disturbance_test"
  "disturbance_test.pdb"
  "disturbance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disturbance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
