# Empty dependencies file for disturbance_test.
# This may be replaced when dependencies are built.
