# Empty compiler generated dependencies file for advanced_hammer_test.
# This may be replaced when dependencies are built.
