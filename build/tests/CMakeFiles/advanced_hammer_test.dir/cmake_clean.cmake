file(REMOVE_RECURSE
  "CMakeFiles/advanced_hammer_test.dir/advanced_hammer_test.cpp.o"
  "CMakeFiles/advanced_hammer_test.dir/advanced_hammer_test.cpp.o.d"
  "advanced_hammer_test"
  "advanced_hammer_test.pdb"
  "advanced_hammer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advanced_hammer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
