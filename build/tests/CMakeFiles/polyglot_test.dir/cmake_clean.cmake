file(REMOVE_RECURSE
  "CMakeFiles/polyglot_test.dir/polyglot_test.cpp.o"
  "CMakeFiles/polyglot_test.dir/polyglot_test.cpp.o.d"
  "polyglot_test"
  "polyglot_test.pdb"
  "polyglot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polyglot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
