# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dram_geometry_test[1]_include.cmake")
include("/root/repo/build/tests/address_mapper_test[1]_include.cmake")
include("/root/repo/build/tests/disturbance_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/trr_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/dram_device_test[1]_include.cmake")
include("/root/repo/build/tests/row_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/nand_test[1]_include.cmake")
include("/root/repo/build/tests/nand_reliability_test[1]_include.cmake")
include("/root/repo/build/tests/l2p_layout_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/nvme_test[1]_include.cmake")
include("/root/repo/build/tests/queue_pair_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_test[1]_include.cmake")
include("/root/repo/build/tests/fs_test[1]_include.cmake")
include("/root/repo/build/tests/fs_property_test[1]_include.cmake")
include("/root/repo/build/tests/property_sweeps_test[1]_include.cmake")
include("/root/repo/build/tests/cloud_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/end_to_end_test[1]_include.cmake")
include("/root/repo/build/tests/mitigation_test[1]_include.cmake")
include("/root/repo/build/tests/advanced_hammer_test[1]_include.cmake")
include("/root/repo/build/tests/polyglot_test[1]_include.cmake")
