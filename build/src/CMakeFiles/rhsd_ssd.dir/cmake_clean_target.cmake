file(REMOVE_RECURSE
  "librhsd_ssd.a"
)
