file(REMOVE_RECURSE
  "CMakeFiles/rhsd_ssd.dir/ssd/ssd_device.cpp.o"
  "CMakeFiles/rhsd_ssd.dir/ssd/ssd_device.cpp.o.d"
  "librhsd_ssd.a"
  "librhsd_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
