# Empty dependencies file for rhsd_ssd.
# This may be replaced when dependencies are built.
