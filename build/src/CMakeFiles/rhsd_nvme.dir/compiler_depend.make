# Empty compiler generated dependencies file for rhsd_nvme.
# This may be replaced when dependencies are built.
