file(REMOVE_RECURSE
  "CMakeFiles/rhsd_nvme.dir/nvme/iops_model.cpp.o"
  "CMakeFiles/rhsd_nvme.dir/nvme/iops_model.cpp.o.d"
  "CMakeFiles/rhsd_nvme.dir/nvme/nvme_controller.cpp.o"
  "CMakeFiles/rhsd_nvme.dir/nvme/nvme_controller.cpp.o.d"
  "CMakeFiles/rhsd_nvme.dir/nvme/queue_pair.cpp.o"
  "CMakeFiles/rhsd_nvme.dir/nvme/queue_pair.cpp.o.d"
  "CMakeFiles/rhsd_nvme.dir/nvme/rate_limiter.cpp.o"
  "CMakeFiles/rhsd_nvme.dir/nvme/rate_limiter.cpp.o.d"
  "librhsd_nvme.a"
  "librhsd_nvme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_nvme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
