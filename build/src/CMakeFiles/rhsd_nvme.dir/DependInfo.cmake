
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvme/iops_model.cpp" "src/CMakeFiles/rhsd_nvme.dir/nvme/iops_model.cpp.o" "gcc" "src/CMakeFiles/rhsd_nvme.dir/nvme/iops_model.cpp.o.d"
  "/root/repo/src/nvme/nvme_controller.cpp" "src/CMakeFiles/rhsd_nvme.dir/nvme/nvme_controller.cpp.o" "gcc" "src/CMakeFiles/rhsd_nvme.dir/nvme/nvme_controller.cpp.o.d"
  "/root/repo/src/nvme/queue_pair.cpp" "src/CMakeFiles/rhsd_nvme.dir/nvme/queue_pair.cpp.o" "gcc" "src/CMakeFiles/rhsd_nvme.dir/nvme/queue_pair.cpp.o.d"
  "/root/repo/src/nvme/rate_limiter.cpp" "src/CMakeFiles/rhsd_nvme.dir/nvme/rate_limiter.cpp.o" "gcc" "src/CMakeFiles/rhsd_nvme.dir/nvme/rate_limiter.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
