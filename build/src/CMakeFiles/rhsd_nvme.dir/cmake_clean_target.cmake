file(REMOVE_RECURSE
  "librhsd_nvme.a"
)
