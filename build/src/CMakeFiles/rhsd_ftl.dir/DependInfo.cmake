
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/ftl.cpp" "src/CMakeFiles/rhsd_ftl.dir/ftl/ftl.cpp.o" "gcc" "src/CMakeFiles/rhsd_ftl.dir/ftl/ftl.cpp.o.d"
  "/root/repo/src/ftl/l2p_layout.cpp" "src/CMakeFiles/rhsd_ftl.dir/ftl/l2p_layout.cpp.o" "gcc" "src/CMakeFiles/rhsd_ftl.dir/ftl/l2p_layout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
