file(REMOVE_RECURSE
  "librhsd_ftl.a"
)
