# Empty dependencies file for rhsd_ftl.
# This may be replaced when dependencies are built.
