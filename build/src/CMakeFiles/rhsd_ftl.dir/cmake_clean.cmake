file(REMOVE_RECURSE
  "CMakeFiles/rhsd_ftl.dir/ftl/ftl.cpp.o"
  "CMakeFiles/rhsd_ftl.dir/ftl/ftl.cpp.o.d"
  "CMakeFiles/rhsd_ftl.dir/ftl/l2p_layout.cpp.o"
  "CMakeFiles/rhsd_ftl.dir/ftl/l2p_layout.cpp.o.d"
  "librhsd_ftl.a"
  "librhsd_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
