file(REMOVE_RECURSE
  "librhsd_nand.a"
)
