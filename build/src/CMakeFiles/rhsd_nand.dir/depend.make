# Empty dependencies file for rhsd_nand.
# This may be replaced when dependencies are built.
