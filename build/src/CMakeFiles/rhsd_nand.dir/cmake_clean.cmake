file(REMOVE_RECURSE
  "CMakeFiles/rhsd_nand.dir/nand/nand_device.cpp.o"
  "CMakeFiles/rhsd_nand.dir/nand/nand_device.cpp.o.d"
  "librhsd_nand.a"
  "librhsd_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
