
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_mapper.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/address_mapper.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/address_mapper.cpp.o.d"
  "/root/repo/src/dram/cache_model.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/cache_model.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/cache_model.cpp.o.d"
  "/root/repo/src/dram/disturbance_model.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/disturbance_model.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/disturbance_model.cpp.o.d"
  "/root/repo/src/dram/dram_device.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/dram_device.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/dram_device.cpp.o.d"
  "/root/repo/src/dram/ecc.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/ecc.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/ecc.cpp.o.d"
  "/root/repo/src/dram/profiles.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/profiles.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/profiles.cpp.o.d"
  "/root/repo/src/dram/trr.cpp" "src/CMakeFiles/rhsd_dram.dir/dram/trr.cpp.o" "gcc" "src/CMakeFiles/rhsd_dram.dir/dram/trr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
