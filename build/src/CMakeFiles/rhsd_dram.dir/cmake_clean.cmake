file(REMOVE_RECURSE
  "CMakeFiles/rhsd_dram.dir/dram/address_mapper.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/address_mapper.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/cache_model.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/cache_model.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/disturbance_model.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/disturbance_model.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/dram_device.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/dram_device.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/ecc.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/ecc.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/profiles.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/profiles.cpp.o.d"
  "CMakeFiles/rhsd_dram.dir/dram/trr.cpp.o"
  "CMakeFiles/rhsd_dram.dir/dram/trr.cpp.o.d"
  "librhsd_dram.a"
  "librhsd_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
