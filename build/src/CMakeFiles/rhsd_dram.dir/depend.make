# Empty dependencies file for rhsd_dram.
# This may be replaced when dependencies are built.
