file(REMOVE_RECURSE
  "librhsd_dram.a"
)
