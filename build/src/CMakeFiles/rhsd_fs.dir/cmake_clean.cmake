file(REMOVE_RECURSE
  "CMakeFiles/rhsd_fs.dir/fs/block_device.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/block_device.cpp.o.d"
  "CMakeFiles/rhsd_fs.dir/fs/directory.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/directory.cpp.o.d"
  "CMakeFiles/rhsd_fs.dir/fs/extent_tree.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/extent_tree.cpp.o.d"
  "CMakeFiles/rhsd_fs.dir/fs/filesystem.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/filesystem.cpp.o.d"
  "CMakeFiles/rhsd_fs.dir/fs/fsck.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/fsck.cpp.o.d"
  "CMakeFiles/rhsd_fs.dir/fs/indirect.cpp.o"
  "CMakeFiles/rhsd_fs.dir/fs/indirect.cpp.o.d"
  "librhsd_fs.a"
  "librhsd_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
