# Empty dependencies file for rhsd_fs.
# This may be replaced when dependencies are built.
