file(REMOVE_RECURSE
  "librhsd_fs.a"
)
