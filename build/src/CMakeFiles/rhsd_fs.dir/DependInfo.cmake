
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fs/block_device.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/block_device.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/block_device.cpp.o.d"
  "/root/repo/src/fs/directory.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/directory.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/directory.cpp.o.d"
  "/root/repo/src/fs/extent_tree.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/extent_tree.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/extent_tree.cpp.o.d"
  "/root/repo/src/fs/filesystem.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/filesystem.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/filesystem.cpp.o.d"
  "/root/repo/src/fs/fsck.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/fsck.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/fsck.cpp.o.d"
  "/root/repo/src/fs/indirect.cpp" "src/CMakeFiles/rhsd_fs.dir/fs/indirect.cpp.o" "gcc" "src/CMakeFiles/rhsd_fs.dir/fs/indirect.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
