file(REMOVE_RECURSE
  "librhsd_attack.a"
)
