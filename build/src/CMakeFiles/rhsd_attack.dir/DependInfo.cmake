
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/aggressor_finder.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/aggressor_finder.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/aggressor_finder.cpp.o.d"
  "/root/repo/src/attack/bitflip_scanner.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/bitflip_scanner.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/bitflip_scanner.cpp.o.d"
  "/root/repo/src/attack/end_to_end.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/end_to_end.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/end_to_end.cpp.o.d"
  "/root/repo/src/attack/escalation.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/escalation.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/escalation.cpp.o.d"
  "/root/repo/src/attack/hammer_orchestrator.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/hammer_orchestrator.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/hammer_orchestrator.cpp.o.d"
  "/root/repo/src/attack/polyglot.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/polyglot.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/polyglot.cpp.o.d"
  "/root/repo/src/attack/probability_model.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/probability_model.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/probability_model.cpp.o.d"
  "/root/repo/src/attack/row_templating.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/row_templating.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/row_templating.cpp.o.d"
  "/root/repo/src/attack/sprayer.cpp" "src/CMakeFiles/rhsd_attack.dir/attack/sprayer.cpp.o" "gcc" "src/CMakeFiles/rhsd_attack.dir/attack/sprayer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rhsd_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_fs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nvme.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rhsd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
