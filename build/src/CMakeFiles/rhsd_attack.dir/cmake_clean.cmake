file(REMOVE_RECURSE
  "CMakeFiles/rhsd_attack.dir/attack/aggressor_finder.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/aggressor_finder.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/bitflip_scanner.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/bitflip_scanner.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/end_to_end.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/end_to_end.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/escalation.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/escalation.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/hammer_orchestrator.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/hammer_orchestrator.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/polyglot.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/polyglot.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/probability_model.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/probability_model.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/row_templating.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/row_templating.cpp.o.d"
  "CMakeFiles/rhsd_attack.dir/attack/sprayer.cpp.o"
  "CMakeFiles/rhsd_attack.dir/attack/sprayer.cpp.o.d"
  "librhsd_attack.a"
  "librhsd_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
