# Empty compiler generated dependencies file for rhsd_attack.
# This may be replaced when dependencies are built.
