file(REMOVE_RECURSE
  "librhsd_cloud.a"
)
