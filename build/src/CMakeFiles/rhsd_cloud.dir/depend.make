# Empty dependencies file for rhsd_cloud.
# This may be replaced when dependencies are built.
