file(REMOVE_RECURSE
  "CMakeFiles/rhsd_cloud.dir/cloud/cloud_host.cpp.o"
  "CMakeFiles/rhsd_cloud.dir/cloud/cloud_host.cpp.o.d"
  "CMakeFiles/rhsd_cloud.dir/cloud/tenant.cpp.o"
  "CMakeFiles/rhsd_cloud.dir/cloud/tenant.cpp.o.d"
  "librhsd_cloud.a"
  "librhsd_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
