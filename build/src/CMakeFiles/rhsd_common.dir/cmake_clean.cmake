file(REMOVE_RECURSE
  "CMakeFiles/rhsd_common.dir/common/crc32c.cpp.o"
  "CMakeFiles/rhsd_common.dir/common/crc32c.cpp.o.d"
  "CMakeFiles/rhsd_common.dir/common/hexdump.cpp.o"
  "CMakeFiles/rhsd_common.dir/common/hexdump.cpp.o.d"
  "CMakeFiles/rhsd_common.dir/common/rng.cpp.o"
  "CMakeFiles/rhsd_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/rhsd_common.dir/common/status.cpp.o"
  "CMakeFiles/rhsd_common.dir/common/status.cpp.o.d"
  "librhsd_common.a"
  "librhsd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
