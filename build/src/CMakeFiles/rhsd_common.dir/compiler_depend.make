# Empty compiler generated dependencies file for rhsd_common.
# This may be replaced when dependencies are built.
