file(REMOVE_RECURSE
  "librhsd_common.a"
)
