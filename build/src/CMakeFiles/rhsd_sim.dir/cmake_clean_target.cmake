file(REMOVE_RECURSE
  "librhsd_sim.a"
)
