# Empty compiler generated dependencies file for rhsd_sim.
# This may be replaced when dependencies are built.
