file(REMOVE_RECURSE
  "CMakeFiles/rhsd_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/rhsd_sim.dir/sim/workload.cpp.o.d"
  "librhsd_sim.a"
  "librhsd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
