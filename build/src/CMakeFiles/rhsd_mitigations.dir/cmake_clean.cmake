file(REMOVE_RECURSE
  "CMakeFiles/rhsd_mitigations.dir/mitigations/study.cpp.o"
  "CMakeFiles/rhsd_mitigations.dir/mitigations/study.cpp.o.d"
  "librhsd_mitigations.a"
  "librhsd_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rhsd_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
