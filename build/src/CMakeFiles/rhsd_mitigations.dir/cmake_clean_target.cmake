file(REMOVE_RECURSE
  "librhsd_mitigations.a"
)
