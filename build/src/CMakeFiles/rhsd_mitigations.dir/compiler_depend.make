# Empty compiler generated dependencies file for rhsd_mitigations.
# This may be replaced when dependencies are built.
