# Empty compiler generated dependencies file for async_io_tour.
# This may be replaced when dependencies are built.
