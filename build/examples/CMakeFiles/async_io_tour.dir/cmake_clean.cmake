file(REMOVE_RECURSE
  "CMakeFiles/async_io_tour.dir/async_io_tour.cpp.o"
  "CMakeFiles/async_io_tour.dir/async_io_tour.cpp.o.d"
  "async_io_tour"
  "async_io_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/async_io_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
