file(REMOVE_RECURSE
  "CMakeFiles/mitigation_playground.dir/mitigation_playground.cpp.o"
  "CMakeFiles/mitigation_playground.dir/mitigation_playground.cpp.o.d"
  "mitigation_playground"
  "mitigation_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mitigation_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
