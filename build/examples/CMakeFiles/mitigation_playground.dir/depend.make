# Empty dependencies file for mitigation_playground.
# This may be replaced when dependencies are built.
