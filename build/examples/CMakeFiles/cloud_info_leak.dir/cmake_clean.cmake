file(REMOVE_RECURSE
  "CMakeFiles/cloud_info_leak.dir/cloud_info_leak.cpp.o"
  "CMakeFiles/cloud_info_leak.dir/cloud_info_leak.cpp.o.d"
  "cloud_info_leak"
  "cloud_info_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_info_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
