# Empty dependencies file for cloud_info_leak.
# This may be replaced when dependencies are built.
