# Empty dependencies file for ftl_rowhammer_demo.
# This may be replaced when dependencies are built.
