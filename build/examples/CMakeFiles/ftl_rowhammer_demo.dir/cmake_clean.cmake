file(REMOVE_RECURSE
  "CMakeFiles/ftl_rowhammer_demo.dir/ftl_rowhammer_demo.cpp.o"
  "CMakeFiles/ftl_rowhammer_demo.dir/ftl_rowhammer_demo.cpp.o.d"
  "ftl_rowhammer_demo"
  "ftl_rowhammer_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_rowhammer_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
