#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then a ThreadSanitizer smoke of
# the parallel experiment engine (tests/exec_smoke.cpp) built with
# -DRHSD_SANITIZE=thread.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan smoke: experiment engine under -fsanitize=thread =="
cmake -B build-tsan -S . -DRHSD_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target exec_smoke --target event_loop_smoke --target chaos_torture_test --target event_loop_parity_test
./build-tsan/tests/exec_smoke
# Race-check the event loop's sharded execution (thread-local shard
# sinks, per-bank undo logs, commit/rollback) under real contention.
./build-tsan/tests/event_loop_smoke
# Race-check the mitigation-aware shard path: per-bank TRR tables
# mutated in place by shards, pre-drawn PARA slices, snapshot rollback.
./build-tsan/tests/event_loop_parity_test --gtest_filter='*Mitigated*'

echo "== chaos determinism: fixed-seed storms, back-to-back digest diff =="
# The chaos harness asserts its invariants (tenant isolation,
# acknowledged-write durability, thread-count invariance) inside gtest;
# here each binary additionally runs twice and the CHAOS_DIGEST lines
# are diffed, catching cross-process nondeterminism (iteration order of
# an unordered container, address-dependent hashing, uninitialised
# reads) that a single run cannot see.  Both the normal and the TSan
# build must agree with themselves.
chaos_digests() {  # chaos_digests <binary> <outfile>
  "$1" >"$2.log" 2>&1 || { cat "$2.log" >&2; return 1; }
  grep '^CHAOS_DIGEST' "$2.log" >"$2"
  [[ -s "$2" ]] || { echo "no CHAOS_DIGEST lines from $1" >&2; return 1; }
}
for BUILD_DIR in build build-tsan; do
  BIN="${BUILD_DIR}/tests/chaos_torture_test"
  chaos_digests "${BIN}" "${BUILD_DIR}/chaos.run1"
  chaos_digests "${BIN}" "${BUILD_DIR}/chaos.run2"
  diff "${BUILD_DIR}/chaos.run1" "${BUILD_DIR}/chaos.run2" || {
    echo "chaos gate: nondeterministic digests in ${BUILD_DIR}" >&2
    exit 1
  }
  echo "${BUILD_DIR}: $(wc -l <"${BUILD_DIR}/chaos.run1") digests stable"
done

echo "== perf gate: batched hammer hot path =="
# bench_micro emits BENCH_hotpath.json into its working directory; the
# hot-path comparison runs from main() even when the filter matches no
# registered benchmark, which keeps the gate fast.
PERF_DIR="build/perf-gate"
rm -rf "${PERF_DIR}"
mkdir -p "${PERF_DIR}"
(cd "${PERF_DIR}" && ../bench/bench_micro \
    --benchmark_filter='^$' >/dev/null)
# The §5 mitigation matrix at production trace lengths (0.5 s of
# hammering per triple): BenchReport merges its throughput metric into
# the same BENCH_hotpath.json.
(cd "${PERF_DIR}" && ../bench/bench_mitigations >/dev/null)
# The N-tenant event-loop sweeps (--quick keeps them small): the
# read-heavy scale sweep merges cloud_tenant_iops, the TRR+PARA sweep
# merges cloud_mitigated_iops, and the mixed read/write sweep merges
# cloud_write_iops into the same report.  The binary itself asserts the
# mixed sweep engaged the sharded write path and the mitigated sweep
# engaged TRR/PARA and the rate limiter on the shard path.
(cd "${PERF_DIR}" && ../bench/bench_cloud_scale --quick >/dev/null)
REPORT="${PERF_DIR}/BENCH_hotpath.json"
if [[ ! -f "${REPORT}" ]]; then
  echo "perf gate: bench_micro produced no ${REPORT}" >&2
  exit 1
fi

# Trajectory check against the newest archived report (before this
# run's report is archived): any *_speedup ratio or *_per_s / *_iops
# throughput metric regressing by more than 20% fails the gate even while still
# above its fixed floor, so slow perf erosion can't hide under a
# generous absolute threshold.
extract_metric() {  # extract_metric <file> <key>
  sed -n "s/.*\"$2\": *\\([0-9.eE+-]*\\).*/\\1/p" "$1" | head -n 1
}

BASELINE="$(ls -1 bench_history/BENCH_hotpath.*.json 2>/dev/null \
  | sort | tail -n 1 || true)"
if [[ -n "${BASELINE}" ]]; then
  echo "trajectory baseline: ${BASELINE}"
  for KEY in $(sed -n \
      's/.*"\([a-z_]*_speedup\|[a-z_]*_per_s\|[a-z_]*_iops\)".*/\1/p' \
      "${REPORT}"); do
    NEW="$(extract_metric "${REPORT}" "${KEY}")"
    OLD="$(extract_metric "${BASELINE}" "${KEY}")"
    [[ -z "${NEW}" || -z "${OLD}" ]] && continue
    echo "${KEY}: ${OLD} -> ${NEW}"
    awk -v n="${NEW}" -v o="${OLD}" 'BEGIN { exit !(n + 0 >= 0.8 * o) }' || {
      echo "perf gate: ${KEY} regressed >20% (${OLD} -> ${NEW})" >&2
      exit 1
    }
  done
else
  echo "trajectory check: no bench_history baseline yet, skipping"
fi

# Archive the raw report so regressions can be traced across CI runs.
mkdir -p bench_history
cp "${REPORT}" \
  "bench_history/BENCH_hotpath.$(date -u +%Y%m%dT%H%M%SZ).$$.json"

gate_floor() {  # gate_floor <key> <floor>
  local SPEEDUP
  SPEEDUP="$(extract_metric "${REPORT}" "$1")"
  if [[ -z "${SPEEDUP}" ]]; then
    echo "perf gate: $1 missing from ${REPORT}" >&2
    exit 1
  fi
  echo "$1 = ${SPEEDUP} (gate: >= $2)"
  awk -v s="${SPEEDUP}" -v f="$2" 'BEGIN { exit !(s + 0 >= f + 0) }' || {
    echo "perf gate: $1 ${SPEEDUP} < $2" >&2
    exit 1
  }
}

gate_floor hammer_batched_speedup 3.0
gate_floor hammer_batched_trr_speedup 2.0
# >=20x over the ~0.056 scenarios/s the scalar round loop managed at
# production trace lengths (0.5 s of hammering per triple, single core).
gate_floor mitigations_scenarios_per_s 1.12
# Simulated commands retired per host second by the sharded event loop
# across the --quick tenant sweep (~550k+ on a single idle core; floor
# leaves headroom for loaded CI machines).
gate_floor cloud_tenant_iops 100000
# Write commands retired per host second across the mixed read/write
# sweep with per-bank write sharding (~215k on a single idle core).
gate_floor cloud_write_iops 40000
# Same sweep with TRR + PARA live: mitigated hosts must stay on the
# shard path (~550k on a single idle core; the floor is the point —
# sequential fallback would land far below it).
gate_floor cloud_mitigated_iops 50000

echo "== ci.sh: all green =="
