#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then a ThreadSanitizer smoke of
# the parallel experiment engine (tests/exec_smoke.cpp) built with
# -DRHSD_SANITIZE=thread.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan smoke: experiment engine under -fsanitize=thread =="
cmake -B build-tsan -S . -DRHSD_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target exec_smoke
./build-tsan/tests/exec_smoke

echo "== perf gate: batched hammer hot path =="
# bench_micro emits BENCH_hotpath.json into its working directory; the
# hot-path comparison runs from main() even when the filter matches no
# registered benchmark, which keeps the gate fast.
PERF_DIR="build/perf-gate"
rm -rf "${PERF_DIR}"
mkdir -p "${PERF_DIR}"
(cd "${PERF_DIR}" && ../bench/bench_micro \
    --benchmark_filter='^$' >/dev/null)
REPORT="${PERF_DIR}/BENCH_hotpath.json"
if [[ ! -f "${REPORT}" ]]; then
  echo "perf gate: bench_micro produced no ${REPORT}" >&2
  exit 1
fi

# Archive the raw report so regressions can be traced across CI runs.
mkdir -p bench_history
cp "${REPORT}" \
  "bench_history/BENCH_hotpath.$(date -u +%Y%m%dT%H%M%SZ).$$.json"

SPEEDUP="$(sed -n \
  's/.*"hammer_batched_speedup": *\([0-9.eE+-]*\).*/\1/p' \
  "${REPORT}" | head -n 1)"
if [[ -z "${SPEEDUP}" ]]; then
  echo "perf gate: hammer_batched_speedup missing from ${REPORT}" >&2
  exit 1
fi
echo "hammer_batched_speedup = ${SPEEDUP}x (gate: >= 3x)"
awk -v s="${SPEEDUP}" 'BEGIN { exit !(s + 0 >= 3.0) }' || {
  echo "perf gate: batched hammer speedup ${SPEEDUP}x < 3x" >&2
  exit 1
}

echo "== ci.sh: all green =="
