#!/usr/bin/env bash
# CI entry point: tier-1 build + tests, then a ThreadSanitizer smoke of
# the parallel experiment engine (tests/exec_smoke.cpp) built with
# -DRHSD_SANITIZE=thread.
#
# Usage: ./ci.sh [jobs]
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${1:-$(nproc)}"

echo "== tier-1: build + ctest =="
cmake -B build -S .
cmake --build build -j "${JOBS}"
(cd build && ctest --output-on-failure -j "${JOBS}")

echo "== tsan smoke: experiment engine under -fsanitize=thread =="
cmake -B build-tsan -S . -DRHSD_SANITIZE=thread
cmake --build build-tsan -j "${JOBS}" --target exec_smoke
./build-tsan/tests/exec_smoke

echo "== ci.sh: all green =="
