// §5: mitigations.
//
// Runs the hammering primitive and the full Figure 3 exploit under every
// proposed defense and reports what changes — including this
// reproduction's own finding that misdirected-write protections (T10
// reference tags, per-LBA encryption) are only partial: a flip that
// rewinds a mapping to a stale page of the *same* LBA passes both, and
// the filesystem then launders the leak through tag-clean reads.
// Scenarios are independent full-simulator runs, so they execute on the
// parallel experiment engine; rows print in the canonical order
// afterwards and are identical for any thread count.
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "exec/experiment_engine.hpp"
#include "exec/thread_pool.hpp"
#include "mitigations/study.hpp"

using namespace rhsd;

int main() {
  SsdConfig base;
  base.capacity_bytes = 16 * kMiB;
  base.dram_geometry = DramGeometry{.channels = 1,
                                    .dimms_per_channel = 1,
                                    .ranks_per_dimm = 1,
                                    .banks_per_rank = 2,
                                    .rows_per_bank = 128,
                                    .row_bytes = 128};
  base.xor_config.interleaved_bank_bits = 1;
  base.xor_config.row_remap_bits = 6;
  base.dram_profile = DramProfile::Testbed();
  base.dram_profile.min_rate_kaccess_s = 2600.0;
  base.dram_profile.vulnerable_row_fraction = 1.0;
  base.dram_profile.max_cells_per_row = 4;
  base.dram_profile.threshold_spread = 0.5;
  base.partition_blocks = {2048, 2048};

  EndToEndConfig attack;
  attack.files_per_cycle = 300;
  attack.max_cycles = 8;
  attack.hammer_seconds_per_triple = 0.5;  // production trace lengths
  attack.max_triples_per_cycle = 0;
  attack.dump_blocks = 128;
  attack.targets_per_cycle = 128;
  attack.sweep_targets = false;

  /// Every scenario runs under several device seeds: the fan-out unit
  /// handed to the experiment engine is one (scenario, seed) simulation,
  /// so the trial grid saturates however many worker threads exist.
  constexpr std::uint64_t kTrialSeeds = 2;

  std::printf("== §5 mitigations vs the FTL rowhammer exploit ==\n");
  std::printf("(primitive = hammer 8 aggressor sets for 200 ms each; "
              "exploit = full\n spray/hammer/scan loop, up to 8 cycles, "
              "%.1f s of hammering per triple,\n %llu device seeds per "
              "scenario — seed 0 rows shown)\n\n",
              attack.hammer_seconds_per_triple,
              static_cast<unsigned long long>(kTrialSeeds));
  std::printf("%-28s | %9s | %8s %8s %6s %6s | %-10s %6s\n", "mitigation",
              "flips", "ecc-fix", "tag-miss", "trr", "scrub", "exploit",
              "cycles");
  std::printf("%.*s\n", 99,
              "----------------------------------------------------------"
              "-----------------------------------------");

  const std::vector<MitigationScenario> scenarios =
      MitigationStudy::StandardScenarios();
  exec::ThreadPool pool;
  const std::uint64_t total_runs = scenarios.size() * kTrialSeeds;
  const double t0 = bench::HostSeconds();
  const std::vector<MitigationResult> results = exec::RunTrials(
      pool, total_runs, /*base_seed=*/0,
      [&](std::uint64_t i, std::uint64_t /*seed*/) {
        // Trial i = scenario (i / kTrialSeeds) on device seed
        // (i % kTrialSeeds); each run builds its own SSD from `base`, so
        // determinism comes from the configs alone.
        SsdConfig cfg = base;
        cfg.seed = base.seed + i % kTrialSeeds;
        return MitigationStudy::Run(scenarios[i / kTrialSeeds], cfg, attack,
                                    /*run_e2e=*/true);
      });
  const double elapsed_s = bench::HostSeconds() - t0;

  for (std::size_t i = 0; i < results.size(); i += kTrialSeeds) {
    const MitigationResult& r = results[i];  // seed-0 run of the scenario
    const char* outcome = r.e2e_success       ? "LEAKED"
                          : r.e2e_fs_corrupted ? "fs-corrupt"
                                               : "blocked";
    std::printf("%-28s | %9llu | %8llu %8llu %6llu %6llu | %-10s %6u\n",
                r.name.c_str(),
                static_cast<unsigned long long>(r.primitive_flips),
                static_cast<unsigned long long>(r.ecc_corrected),
                static_cast<unsigned long long>(r.reference_tag_mismatches),
                static_cast<unsigned long long>(r.trr_refreshes),
                static_cast<unsigned long long>(r.scrub_repairs),
                outcome, r.e2e_cycles);
  }

  std::printf("\nwhat §5 says about each:\n");
  for (const MitigationScenario& s : scenarios) {
    std::printf("  %-28s %s\n", (s.name + ":").c_str(),
                s.paper_note.c_str());
  }
  std::printf(
      "\nshape check: ECC / TRR (vs naive patterns) / fast refresh /\n"
      "FTL caches / rate limiting kill the DRAM-level primitive;\n"
      "layout keying and extent enforcement break the exploit chain\n"
      "instead.  TRR falls to many-sided patterns (TRRespass), and the\n"
      "stale-page rewind shows block integrity/encryption are weaker\n"
      "than they look — both consistent with §5's cautious wording.\n");

  bench::BenchReport report;
  report.set("mitigations_scenarios_per_s", total_runs / elapsed_s);
  report.set("mitigations_threads", static_cast<double>(pool.size()));
  report.write();
  return 0;
}
