// N-tenant cloud scale: attacker flip probability and victim read
// latency vs background load, across tenant counts.
//
// One shared SSD hosts the paper's victim/attacker pair plus N-2
// background tenants.  All of them push traffic through the async NVMe
// event loop (per-bank sharded execution on a thread pool): the victim
// issues hot/cold reads whose p50/p99 completion latency we measure in
// simulated time, the attacker hammers a fixed set of aggressor L2P
// rows in its own partition, and the background tenants generate
// Zipfian / bursty mixed traffic.  As the tenant count grows, the
// arbiter multiplexes more queues, background IOPS climb and victim
// tail latency stretches — while the attacker keeps flipping its
// target rows, because namespace isolation partitions the flash, not
// the shared DRAM holding the L2P table (§4.1's cloud setting measured
// end to end).
//
// Host-perf trajectory: `cloud_tenant_iops` = simulated commands
// retired per host second across the whole sweep (the sharded event
// loop is the hot path being sized).  `--quick` runs a reduced sweep
// for CI.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "cloud/cloud_host.hpp"
#include "exec/thread_pool.hpp"
#include "nvme/event_loop.hpp"
#include "sim/workload.hpp"

using namespace rhsd;

namespace {

/// 64 MiB SSD (16384 LBAs): victim and attacker keep the paper's
/// 2048-block partitions, the rest is split across background tenants.
SsdConfig ScaleConfig(std::uint32_t tenants) {
  SsdConfig c;
  c.capacity_bytes = 64 * kMiB;
  c.dram_geometry = DramGeometry{.channels = 1,
                                 .dimms_per_channel = 1,
                                 .ranks_per_dimm = 1,
                                 .banks_per_rank = 2,
                                 .rows_per_bank = 256,
                                 .row_bytes = 512};
  // Weak part so the attacker's budget per refresh window matters:
  // threshold = 2 * 10e3 * 0.064 = 1280 effective activations.
  c.dram_profile.min_rate_kaccess_s = 10.0;
  c.dram_profile.vulnerable_row_fraction = 1.0;
  c.dram_profile.max_cells_per_row = 2;
  c.dram_profile.threshold_spread = 0.5;
  c.xor_config.interleaved_bank_bits = 1;
  c.xor_config.row_remap_bits = 4;
  c.hammers_per_io = 5;
  c.host_interface = HostInterface::kTestbedVmDirect;
  c.partition_blocks = {2048, 2048};
  std::uint64_t spare = c.num_lbas() - 4096;
  if (tenants > 2) {
    const std::uint64_t per = spare / (tenants - 2);
    c.partition_blocks.insert(c.partition_blocks.end(), tenants - 2, per);
  } else {
    c.partition_blocks[1] += spare;  // attacker absorbs the spare space
  }
  c.seed = 42;
  return c;
}

struct ScaleResult {
  std::uint64_t commands = 0;
  std::uint64_t sharded = 0;
  double sim_seconds = 0.0;
  double sim_iops = 0.0;
  double victim_p50_us = 0.0;
  double victim_p99_us = 0.0;
  std::uint64_t flips = 0;
  double flip_probability = 0.0;  // flipped rows / hammered victim rows
  // Mitigated-sweep engagement counters (zero when mitigations are off).
  std::uint64_t mitigated_sharded = 0;
  std::uint64_t trr_merges = 0;
  std::uint64_t para_draws = 0;
  std::uint64_t trr_refreshes = 0;
  std::uint64_t plan_stalls = 0;
};

/// The attacker's aggressor set: 8 slbas, one per 128-entry L2P row
/// chunk, so 8 distinct DRAM rows get hammered (16 victim neighbours).
constexpr std::uint64_t kAggressors = 8;

ScaleResult RunScale(std::uint32_t tenants, exec::ThreadPool& pool,
                     bool quick, bool mitigated = false,
                     bool limited = false) {
  SsdConfig cfg = ScaleConfig(tenants);
  if (limited) {
    // §5's IO rate cap, low enough that the token bucket actually
    // stalls commands; the stalls are computed serially at plan time
    // on a limiter copy so the batch still shards.
    cfg.rate_limit = RateLimiterConfig{50e3, 16};
  }
  if (mitigated) {
    // Production-like mitigated profile: TRR trips below the flip
    // threshold (1280 effective activations) so the attack is actually
    // blunted, PARA adds its probabilistic refreshes on top.  Both now
    // ride the per-bank shard path instead of forcing the whole host
    // onto sequential execution.
    cfg.dram_mitigations.trr = true;
    cfg.dram_mitigations.trr_config.activation_threshold = 1000;
    cfg.dram_mitigations.para_probability = 1.0 / 512;
  }
  CloudHost host(cfg);
  for (std::uint32_t t = 2; t < tenants; ++t) {
    auto id = host.add_tenant(
        TenantConfig{.name = "bg-" + std::to_string(t)});
    RHSD_CHECK_MSG(id.ok(), "tenant " << t << ": " << id.status());
  }
  SsdDevice& ssd = host.ssd();
  NvmeController& ctrl = ssd.controller();

  EventLoopConfig lc;
  lc.policy = ArbitrationPolicy::kRoundRobin;
  lc.seed = 7;
  lc.sharded = true;
  lc.pool = &pool;
  NvmeEventLoop loop(ctrl, lc);

  // The attacker's victim rows: physical same-bank neighbours of the
  // DRAM rows holding the aggressor L2P entries.  Flip probability is
  // measured against this set only — background tenants' own hot
  // traffic also disturbs rows, but that is their problem, not the
  // attacker's success rate.
  const DramGeometry& geom = ssd.dram().mapper().geometry();
  const std::uint64_t attacker_base =
      host.partition_range(CloudHost::kAttackerId).first.value();
  std::set<std::uint64_t> victim_rows;
  for (std::uint64_t a = 0; a < kAggressors; ++a) {
    const DramCoord c = ssd.dram().mapper().decode(
        ssd.ftl().layout().entry_addr(attacker_base + a * 128));
    const std::uint64_t row = c.global_row(geom);
    if (row % geom.rows_per_bank > 0) victim_rows.insert(row - 1);
    if (row % geom.rows_per_bank + 1 < geom.rows_per_bank) {
      victim_rows.insert(row + 1);
    }
  }

  constexpr std::uint32_t kDepth = 16;
  std::vector<std::unique_ptr<NvmeQueuePair>> qps;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    qps.push_back(std::make_unique<NvmeQueuePair>(
        ctrl, static_cast<std::uint16_t>(t + 1), kDepth));
    // Foreground pair gets double the arbitration weight of background.
    loop.attach(*qps[t], t < 2 ? 2 : 1);
  }

  // Scripts.  Victim: read-only hot/cold over its partition.  Attacker:
  // round-robin reads of the aggressor set.  Background: Zipfian /
  // bursty mixes with 10% writes.
  const std::uint64_t victim_ops = quick ? 1500 : 4000;
  const std::uint64_t attacker_ops = quick ? 4000 : 20000;
  const std::uint64_t bg_ops = quick ? 256 : 512;
  std::vector<std::vector<WorkloadOp>> scripts(tenants);
  {
    WorkloadConfig wc;
    wc.pattern = AccessPattern::kHotCold;
    wc.working_set = host.tenant(CloudHost::kVictimId).blocks();
    wc.write_fraction = 0.0;
    wc.seed = 1;
    scripts[0] = WorkloadGenerator(wc).generate(victim_ops);
  }
  for (std::uint64_t i = 0; i < attacker_ops; ++i) {
    scripts[1].push_back({false, (i % kAggressors) * 128});
  }
  for (std::uint32_t t = 2; t < tenants; ++t) {
    WorkloadConfig wc;
    wc.pattern = t % 2 == 0 ? AccessPattern::kZipfLike
                            : AccessPattern::kBursty;
    wc.working_set = host.tenant(t).blocks();
    wc.write_fraction = 0.1;
    wc.seed = 1000 + t;
    scripts[t] = WorkloadGenerator(wc).generate(bg_ops);
  }

  // Drive everything to completion in waves; victim read latency =
  // completion stamp minus the clock when its wave was submitted.
  std::vector<std::vector<std::uint8_t>> bufs(
      tenants, std::vector<std::uint8_t>(kBlockSize));
  std::vector<std::size_t> next(tenants, 0);
  std::vector<std::uint16_t> cid(tenants, 0);
  std::vector<std::uint64_t> victim_submit_ns(kDepth, 0);
  std::vector<std::uint64_t> latencies;
  latencies.reserve(victim_ops);
  ScaleResult res;
  for (;;) {
    bool pending = false;
    const std::uint64_t wave_ns = ssd.clock().now_ns();
    for (std::uint32_t t = 0; t < tenants; ++t) {
      while (next[t] < scripts[t].size()) {
        const WorkloadOp& op = scripts[t][next[t]];
        NvmeCommand cmd =
            op.is_write
                ? NvmeCommand::Write(
                      cid[t], t + 1, op.slba,
                      std::vector<std::uint8_t>(kBlockSize,
                                                std::uint8_t(cid[t])))
                : NvmeCommand::Read(cid[t], t + 1, op.slba, bufs[t]);
        if (!qps[t]->submit(std::move(cmd)).ok()) break;
        if (t == 0) victim_submit_ns[cid[t] % kDepth] = wave_ns;
        ++next[t];
        ++cid[t];
      }
      pending = pending || next[t] < scripts[t].size() ||
                qps[t]->sq_inflight() > 0;
    }
    if (!pending) break;
    res.commands += loop.run_until_idle();
    for (std::uint32_t t = 0; t < tenants; ++t) {
      while (auto cqe = qps[t]->poll()) {
        RHSD_CHECK(cqe->status.ok());
        if (t == 0) {
          latencies.push_back(cqe->completed_ns -
                              victim_submit_ns[cqe->cid % kDepth]);
        }
      }
    }
  }

  std::sort(latencies.begin(), latencies.end());
  RHSD_CHECK(!latencies.empty());
  res.victim_p50_us = latencies[latencies.size() / 2] / 1e3;
  res.victim_p99_us = latencies[latencies.size() * 99 / 100] / 1e3;
  res.sharded = loop.stats().sharded_commands;
  res.mitigated_sharded = loop.stats().mitigated_sharded_commands;
  res.trr_merges = loop.stats().trr_shard_merges;
  res.para_draws = loop.stats().para_predraw_draws;
  res.plan_stalls = loop.stats().rate_limit_plan_stalls;
  res.trr_refreshes = ssd.dram().trr_refreshes_issued();
  res.sim_seconds = ssd.clock().now_ns() * 1e-9;
  res.sim_iops = res.commands / res.sim_seconds;
  std::set<std::uint64_t> flipped_victims;
  for (const FlipEvent& f : ssd.dram().flip_events()) {
    if (victim_rows.count(f.global_row) > 0) {
      flipped_victims.insert(f.global_row);
      ++res.flips;
    }
  }
  res.flip_probability = static_cast<double>(flipped_victims.size()) /
                         static_cast<double>(victim_rows.size());
  return res;
}

// ---- mixed read/write sweep: sharded write planning under load ----

struct MixedResult {
  std::uint64_t commands = 0;
  std::uint64_t writes = 0;          // device-level write commands
  std::uint64_t sharded_writes = 0;  // committed via shard drafting
  std::uint64_t reserve_flushes = 0;
  std::uint64_t rw_conflict_flushes = 0;
  double sim_seconds = 0.0;
};

/// Every tenant pushes a heavy mixed workload (40% writes) through the
/// sharded event loop.  This is the path the write planner exists for:
/// writes draft into per-bank shards behind plan-time PBA reservations
/// instead of flushing the batch, and the counters prove it.
MixedResult RunMixed(std::uint32_t tenants, exec::ThreadPool& pool,
                     bool quick) {
  SsdConfig cfg = ScaleConfig(tenants);
  // Throughput sweep, not a flip experiment: a flip landing in an L2P
  // entry would turn a background read into an error.
  cfg.dram_profile = DramProfile::Invulnerable();
  CloudHost host(cfg);
  for (std::uint32_t t = 2; t < tenants; ++t) {
    auto id = host.add_tenant(
        TenantConfig{.name = "mix-" + std::to_string(t)});
    RHSD_CHECK_MSG(id.ok(), "tenant " << t << ": " << id.status());
  }
  SsdDevice& ssd = host.ssd();
  NvmeController& ctrl = ssd.controller();

  EventLoopConfig lc;
  lc.policy = ArbitrationPolicy::kRoundRobin;
  lc.seed = 7;
  lc.sharded = true;
  lc.pool = &pool;
  NvmeEventLoop loop(ctrl, lc);

  constexpr std::uint32_t kDepth = 16;
  std::vector<std::unique_ptr<NvmeQueuePair>> qps;
  for (std::uint32_t t = 0; t < tenants; ++t) {
    qps.push_back(std::make_unique<NvmeQueuePair>(
        ctrl, static_cast<std::uint16_t>(t + 1), kDepth));
    loop.attach(*qps[t], 1);
  }

  const std::uint64_t ops = quick ? 600 : 2000;
  std::vector<std::vector<WorkloadOp>> scripts(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    WorkloadConfig wc;
    constexpr AccessPattern kMixes[] = {
        AccessPattern::kRandom, AccessPattern::kZipfLike,
        AccessPattern::kHotCold, AccessPattern::kBursty};
    wc.pattern = kMixes[t % 4];
    wc.working_set = host.tenant(t).blocks();
    wc.write_fraction = 0.4;
    wc.seed = 9000 + t;
    scripts[t] = WorkloadGenerator(wc).generate(ops);
  }

  MixedResult res;
  std::vector<std::vector<std::uint8_t>> bufs(
      tenants, std::vector<std::uint8_t>(kBlockSize));
  std::vector<std::size_t> next(tenants, 0);
  std::vector<std::uint16_t> cid(tenants, 0);
  for (;;) {
    bool pending = false;
    for (std::uint32_t t = 0; t < tenants; ++t) {
      while (next[t] < scripts[t].size()) {
        const WorkloadOp& op = scripts[t][next[t]];
        NvmeCommand cmd =
            op.is_write
                ? NvmeCommand::Write(
                      cid[t], t + 1, op.slba,
                      std::vector<std::uint8_t>(kBlockSize,
                                                std::uint8_t(cid[t])))
                : NvmeCommand::Read(cid[t], t + 1, op.slba, bufs[t]);
        if (!qps[t]->submit(std::move(cmd)).ok()) break;
        ++next[t];
        ++cid[t];
      }
      pending = pending || next[t] < scripts[t].size() ||
                qps[t]->sq_inflight() > 0;
    }
    if (!pending) break;
    res.commands += loop.run_until_idle();
    for (std::uint32_t t = 0; t < tenants; ++t) {
      while (auto cqe = qps[t]->poll()) {
        RHSD_CHECK(cqe->status.ok());
      }
    }
  }
  res.writes = ctrl.stats().write_cmds;
  res.sharded_writes = loop.stats().sharded_writes;
  res.reserve_flushes = loop.stats().write_reserve_flushes;
  res.rw_conflict_flushes = loop.stats().rw_conflict_flushes;
  res.sim_seconds = ssd.clock().now_ns() * 1e-9;
  return res;
}

// ---- failure domains under a seeded transport/media storm ----

struct FaultDomainResult {
  EventLoopStats loop;
  std::uint64_t injected = 0;
  std::uint64_t commands = 0;
  std::uint64_t errors = 0;
};

/// Eight tenants ride a seeded drop/timeout/NAND storm through the
/// sharded loop; the counters show the fault-domain machinery working:
/// batches flushing early around scheduled faults, exhausted retries
/// quarantining only the unlucky tenant, and penalties draining again.
FaultDomainResult RunFaultDomains(exec::ThreadPool& pool) {
  constexpr std::uint32_t kStormTenants = 8;
  constexpr std::uint32_t kDepth = 8;
  constexpr std::uint64_t kCmds = 1500;
  SsdConfig cfg = SsdConfig::DemoSetup(16 * kMiB);
  cfg.dram_profile = DramProfile::Invulnerable();
  cfg.partition_blocks.assign(kStormTenants,
                              cfg.num_lbas() / kStormTenants);
  FaultRates rates;
  rates.nvme_drop = 0.01;
  rates.nvme_timeout = 0.005;
  rates.nand_read = 0.002;
  cfg.fault_plan =
      FaultPlan::Random(/*seed=*/42, rates, /*horizon=*/20000);
  SsdDevice ssd(cfg);

  EventLoopConfig lc;
  lc.policy = ArbitrationPolicy::kRoundRobin;
  lc.seed = 7;
  lc.sharded = true;
  lc.pool = &pool;
  NvmeEventLoop loop(ssd.controller(), lc);
  std::vector<std::unique_ptr<NvmeQueuePair>> qps;
  for (std::uint32_t t = 0; t < kStormTenants; ++t) {
    qps.push_back(std::make_unique<NvmeQueuePair>(
        ssd.controller(), static_cast<std::uint16_t>(t + 1), kDepth));
    loop.attach(*qps[t], 1 + t % 3);
  }
  std::vector<std::vector<WorkloadOp>> scripts(kStormTenants);
  for (std::uint32_t t = 0; t < kStormTenants; ++t) {
    WorkloadConfig wc;
    wc.pattern =
        t % 2 == 0 ? AccessPattern::kZipfLike : AccessPattern::kBursty;
    wc.working_set = cfg.num_lbas() / kStormTenants;
    wc.write_fraction = 0.2;
    wc.seed = 4000 + t;
    scripts[t] = WorkloadGenerator(wc).generate(kCmds);
  }

  FaultDomainResult res;
  std::vector<std::vector<std::uint8_t>> bufs(
      kStormTenants, std::vector<std::uint8_t>(kBlockSize));
  std::vector<std::size_t> next(kStormTenants, 0);
  std::vector<std::uint16_t> cid(kStormTenants, 0);
  for (;;) {
    bool pending = false;
    for (std::uint32_t t = 0; t < kStormTenants; ++t) {
      while (next[t] < scripts[t].size()) {
        const WorkloadOp& op = scripts[t][next[t]];
        NvmeCommand cmd =
            op.is_write
                ? NvmeCommand::Write(
                      cid[t], t + 1, op.slba,
                      std::vector<std::uint8_t>(kBlockSize,
                                                std::uint8_t(cid[t])))
                : NvmeCommand::Read(cid[t], t + 1, op.slba, bufs[t]);
        if (!qps[t]->submit(std::move(cmd)).ok()) break;
        ++next[t];
        ++cid[t];
      }
      pending = pending || next[t] < scripts[t].size() ||
                qps[t]->sq_inflight() > 0;
    }
    if (!pending) break;
    res.commands += loop.run_until_idle();
    for (std::uint32_t t = 0; t < kStormTenants; ++t) {
      while (auto cqe = qps[t]->poll()) {
        if (!cqe->status.ok()) ++res.errors;
      }
    }
  }
  res.loop = loop.stats();
  res.injected = ssd.fault_injector()->log().size();
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  const std::vector<std::uint32_t> counts =
      quick ? std::vector<std::uint32_t>{2, 8, 32}
            : std::vector<std::uint32_t>{2, 4, 16, 64, 256, 1024};

  exec::ThreadPool pool;
  std::printf("== N-tenant cloud host: flips + victim latency vs "
              "background load ==\n");
  std::printf("(async event loop, round-robin arbitration, per-bank "
              "sharding on %u threads%s)\n\n",
              static_cast<unsigned>(pool.size()),
              quick ? ", --quick" : "");
  std::printf("%7s | %8s %8s | %9s | %9s %9s | %5s %9s\n", "tenants",
              "cmds", "sharded", "sim-kIOPS", "p50-us", "p99-us", "flips",
              "flip-prob");
  std::printf("%.*s\n", 84,
              "----------------------------------------------------------"
              "--------------------------");

  std::uint64_t total_commands = 0;
  const double t0 = bench::HostSeconds();
  for (const std::uint32_t tenants : counts) {
    const ScaleResult r = RunScale(tenants, pool, quick);
    total_commands += r.commands;
    std::printf("%7u | %8llu %8llu | %9.1f | %9.2f %9.2f | %5llu %9.2f\n",
                tenants, static_cast<unsigned long long>(r.commands),
                static_cast<unsigned long long>(r.sharded),
                r.sim_iops / 1e3, r.victim_p50_us, r.victim_p99_us,
                static_cast<unsigned long long>(r.flips),
                r.flip_probability);
  }
  const double elapsed_s = bench::HostSeconds() - t0;

  std::printf(
      "\nshape check: background load grows with the tenant count and "
      "the\nvictim's p99 stretches (noisy neighbours in the completion "
      "stream),\nyet the attacker keeps flipping its target rows — "
      "namespace\nisolation partitions the flash, not the DRAM holding "
      "the L2P table.\n");
  std::printf("\nhost throughput: %.0f simulated cmds/s (%llu cmds in "
              "%.2f s)\n",
              total_commands / elapsed_s,
              static_cast<unsigned long long>(total_commands), elapsed_s);

  // Mitigated sweep: the same hosts with TRR + PARA enabled.  These
  // configs used to fall back to sequential execution; now they shard,
  // and the engagement counters prove the mitigation machinery really
  // ran on the fast path.
  std::printf("\n== mitigated hosts (TRR @1000 acts + PARA 1/512): "
              "sharded mitigation path ==\n\n");
  std::printf("%7s | %8s %8s | %9s | %8s %10s | %5s\n", "tenants",
              "cmds", "mit-shrd", "sim-kIOPS", "trr-ref", "para-draws",
              "flips");
  std::printf("%.*s\n", 74,
              "----------------------------------------------------------"
              "--------------------------");
  std::uint64_t mit_commands = 0;
  std::uint64_t mit_sharded = 0;
  std::uint64_t mit_trr_merges = 0;
  std::uint64_t mit_para_draws = 0;
  std::uint64_t mit_trr_refreshes = 0;
  std::uint64_t mit_plan_stalls = 0;
  const double tmit0 = bench::HostSeconds();
  for (const std::uint32_t tenants : counts) {
    const ScaleResult r = RunScale(tenants, pool, quick,
                                   /*mitigated=*/true);
    mit_commands += r.commands;
    mit_sharded += r.mitigated_sharded;
    mit_trr_merges += r.trr_merges;
    mit_para_draws += r.para_draws;
    mit_trr_refreshes += r.trr_refreshes;
    std::printf("%7u | %8llu %8llu | %9.1f | %8llu %10llu | %5llu\n",
                tenants, static_cast<unsigned long long>(r.commands),
                static_cast<unsigned long long>(r.mitigated_sharded),
                r.sim_iops / 1e3,
                static_cast<unsigned long long>(r.trr_refreshes),
                static_cast<unsigned long long>(r.para_draws),
                static_cast<unsigned long long>(r.flips));
  }
  const double mit_elapsed_s = bench::HostSeconds() - tmit0;
  RHSD_CHECK_MSG(mit_sharded > 0,
                 "mitigated sweep never took the sharded path");
  RHSD_CHECK_MSG(mit_trr_refreshes > 0 && mit_para_draws > 0,
                 "mitigated sweep never engaged TRR/PARA");
  std::printf("\nmitigated throughput: %.0f simulated cmds/s (%llu cmds "
              "in %.2f s)\n",
              mit_commands / mit_elapsed_s,
              static_cast<unsigned long long>(mit_commands),
              mit_elapsed_s);

  // One rate-limited point on top: the token bucket's stalls are
  // computed serially at draft time, so the capped host still shards.
  {
    const ScaleResult rl = RunScale(quick ? 8u : 16u, pool, quick,
                                    /*mitigated=*/true, /*limited=*/true);
    mit_plan_stalls = rl.plan_stalls;
    RHSD_CHECK_MSG(rl.mitigated_sharded > 0 && rl.plan_stalls > 0,
                   "rate-limited point never stalled on the shard path");
    std::printf("rate-limited point (%u tenants, 50k IOPS cap): %llu "
                "plan-time stalls, %llu sharded cmds\n",
                quick ? 8u : 16u,
                static_cast<unsigned long long>(rl.plan_stalls),
                static_cast<unsigned long long>(rl.mitigated_sharded));
  }

  // Mixed read/write sweep: the write planner under multi-tenant load.
  const std::vector<std::uint32_t> mixed_counts =
      quick ? std::vector<std::uint32_t>{4, 16}
            : std::vector<std::uint32_t>{4, 16, 64};
  std::printf("\n== mixed read/write (40%% writes): sharded write "
              "planning ==\n\n");
  std::printf("%7s | %8s %8s %8s | %9s %9s\n", "tenants", "cmds",
              "writes", "sharded", "rsv-flsh", "rw-flsh");
  std::printf("%.*s\n", 66,
              "----------------------------------------------------------"
              "--------------------------");
  std::uint64_t mixed_writes = 0;
  const double tm0 = bench::HostSeconds();
  std::uint64_t mixed_sharded_writes = 0;
  for (const std::uint32_t tenants : mixed_counts) {
    const MixedResult m = RunMixed(tenants, pool, quick);
    mixed_writes += m.writes;
    mixed_sharded_writes += m.sharded_writes;
    std::printf("%7u | %8llu %8llu %8llu | %9llu %9llu\n", tenants,
                static_cast<unsigned long long>(m.commands),
                static_cast<unsigned long long>(m.writes),
                static_cast<unsigned long long>(m.sharded_writes),
                static_cast<unsigned long long>(m.reserve_flushes),
                static_cast<unsigned long long>(m.rw_conflict_flushes));
  }
  const double mixed_elapsed_s = bench::HostSeconds() - tm0;
  RHSD_CHECK_MSG(mixed_sharded_writes > 0,
                 "mixed sweep never engaged the sharded write path");
  std::printf("\nwrite throughput: %.0f simulated writes/s of host time "
              "(%llu writes in %.2f s)\n",
              mixed_writes / mixed_elapsed_s,
              static_cast<unsigned long long>(mixed_writes),
              mixed_elapsed_s);

  // Failure domains: the same loop under a seeded fault storm.
  const FaultDomainResult fd = RunFaultDomains(pool);
  std::printf("\n== failure domains: 8 tenants under a seeded "
              "drop/timeout/NAND storm ==\n\n");
  std::printf("  commands retired     %10llu  (%llu completion errors)\n",
              static_cast<unsigned long long>(fd.commands),
              static_cast<unsigned long long>(fd.errors));
  std::printf("  faults injected      %10llu\n",
              static_cast<unsigned long long>(fd.injected));
  std::printf("  early flushes        %10llu  (batches split around "
              "scheduled faults)\n",
              static_cast<unsigned long long>(fd.loop.early_flushes));
  std::printf("  rollback replays     %10llu\n",
              static_cast<unsigned long long>(fd.loop.rollback_replays));
  std::printf("  quarantines          %10llu  (+%llu penalty releases)\n",
              static_cast<unsigned long long>(fd.loop.quarantines),
              static_cast<unsigned long long>(fd.loop.quarantine_releases));
  std::printf("  degraded rejections  %10llu\n",
              static_cast<unsigned long long>(fd.loop.degraded_rejections));
  std::printf("  device transitions   %10llu\n",
              static_cast<unsigned long long>(fd.loop.device_transitions));

  bench::BenchReport report;
  report.set("cloud_tenant_iops", total_commands / elapsed_s);
  report.set("cloud_mitigated_iops", mit_commands / mit_elapsed_s);
  report.set("cloud_mitigated_sharded_commands",
             static_cast<double>(mit_sharded));
  report.set("cloud_trr_shard_merges",
             static_cast<double>(mit_trr_merges));
  report.set("cloud_para_predraw_draws",
             static_cast<double>(mit_para_draws));
  report.set("cloud_rate_limit_plan_stalls",
             static_cast<double>(mit_plan_stalls));
  report.set("cloud_write_iops", mixed_writes / mixed_elapsed_s);
  report.set("cloud_sharded_writes",
             static_cast<double>(mixed_sharded_writes));
  report.set("cloud_scale_threads", static_cast<double>(pool.size()));
  report.set("cloud_fault_early_flushes",
             static_cast<double>(fd.loop.early_flushes));
  report.set("cloud_fault_quarantines",
             static_cast<double>(fd.loop.quarantines));
  report.set("cloud_fault_injected", static_cast<double>(fd.injected));
  report.write();
  return 0;
}
