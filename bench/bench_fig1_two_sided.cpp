// Figure 1: the two-sided FTL rowhammering attack.
//
// Setup: 1 GiB shared SSD (the paper's size), victim fills its partition
// sequentially; the attacker hammers each cross-partition aggressor set
// with alternating reads and we report, per set, the bitflips and —
// the figure's punchline — victim L2P entries silently redirected to a
// different PBA.  A single-sided series reproduces §4.2's "single-sided
// attacks flip fewer bits in practice".
#include <cstdio>
#include <algorithm>
#include <map>

#include "attack/aggressor_finder.hpp"
#include "attack/hammer_orchestrator.hpp"
#include "cloud/cloud_host.hpp"

using namespace rhsd;

namespace {

struct SeriesResult {
  std::uint64_t reads = 0;
  std::uint64_t flips = 0;
  std::uint64_t redirected = 0;
  std::uint64_t sets_with_redirect = 0;
  std::uint64_t sets = 0;
};

SeriesResult RunSeries(HammerMode mode, double seconds_per_set) {
  SsdConfig config = SsdConfig::DemoSetup(256 * kMiB);
  config.dram_profile = DramProfile::Testbed();
  config.dram_profile.vulnerable_row_fraction = 0.25;  // realistic
  CloudHost host(config);

  const std::uint64_t half = config.num_lbas() / 2;
  L2pRowMap map(host.ssd().ftl().layout(), host.ssd().dram().mapper());
  AggressorFinder finder(map);
  const LpnRange victim_range{0, half};
  const LpnRange attacker_range{half, 2 * half};
  const auto triples =
      finder.cross_partition_triples(attacker_range, victim_range);

  // Initial sequential write setup (Figure 1).
  std::vector<std::uint8_t> block(kBlockSize, 0xAB);
  for (std::uint64_t lpn = 0; lpn < half; ++lpn) {
    RHSD_CHECK(host.ssd().controller().write(1, lpn, block).ok());
  }

  Ftl& ftl = host.ssd().ftl();
  HammerOrchestrator hammer(host.attacker_tenant(), finder,
                            attacker_range);
  SeriesResult result;
  // Cap the sweep to keep the bench under a minute of host time.
  const std::size_t limit = std::min<std::size_t>(triples.size(), 80);
  result.sets = limit;
  for (std::size_t i = 0; i < limit; ++i) {
    const TripleSet& t = triples[i];
    std::map<std::uint64_t, std::uint32_t> before;
    for (const std::uint64_t lpn : map.lpns_in_row(t.victim_row)) {
      if (victim_range.contains(lpn)) {
        before[lpn] = ftl.debug_lookup(Lba(lpn));
      }
    }
    auto stats = hammer.hammer_triple(t, mode, seconds_per_set);
    if (!stats.ok()) continue;
    result.reads += stats->reads_issued;
    result.flips += stats->new_flips();
    std::uint64_t redirected_here = 0;
    for (const auto& [lpn, old_pba] : before) {
      if (ftl.debug_lookup(Lba(lpn)) != old_pba) ++redirected_here;
    }
    result.redirected += redirected_here;
    result.sets_with_redirect += redirected_here > 0 ? 1 : 0;
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 1: two-sided FTL rowhammering primitive ==\n");
  std::printf("(256 MiB shared SSD, testbed DRAM profile, 25%% of rows "
              "vulnerable,\n 5x hammer amplification, 150 ms of hammering "
              "per aggressor set)\n\n");
  std::printf("%-14s %12s %10s %12s %16s\n", "mode", "reads", "flips",
              "redirected", "sets w/redirect");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");
  for (const HammerMode mode :
       {HammerMode::kDoubleSided, HammerMode::kSingleSided,
        HammerMode::kOneLocation}) {
    const SeriesResult r = RunSeries(mode, 0.15);
    std::printf("%-14s %12llu %10llu %12llu %11llu/%llu\n",
                to_string(mode),
                static_cast<unsigned long long>(r.reads),
                static_cast<unsigned long long>(r.flips),
                static_cast<unsigned long long>(r.redirected),
                static_cast<unsigned long long>(r.sets_with_redirect),
                static_cast<unsigned long long>(r.sets));
  }
  std::printf(
      "\nshape check (Figure 1 / §4.2): double-sided hammering redirects\n"
      "victim L2P entries through plain reads; single-sided/one-location\n"
      "flip fewer bits for the same access budget.\n");
  return 0;
}
