// Microbenchmarks (google-benchmark): hot paths of the simulator.
//
// These measure *host* performance of the simulation itself — useful
// when scaling experiments up — as opposed to the experiment benches,
// which report *simulated-device* behaviour.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench_report.hpp"
#include "common/crc32c.hpp"
#include "common/rng.hpp"
#include "dram/dram_device.hpp"
#include "dram/ecc.hpp"
#include "ftl/ftl.hpp"
#include "ssd/ssd_device.hpp"

namespace rhsd {
namespace {

void BM_Crc32c4K(benchmark::State& state) {
  std::vector<std::uint8_t> data(kBlockSize, 0xA5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kBlockSize);
}
BENCHMARK(BM_Crc32c4K);

void BM_SecdedEncode(benchmark::State& state) {
  Rng rng(1);
  std::uint64_t word = rng.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SecdedEncode(word));
    ++word;
  }
}
BENCHMARK(BM_SecdedEncode);

void BM_SecdedDecodeClean(benchmark::State& state) {
  const std::uint64_t word = 0xDEADBEEFCAFEF00Dull;
  const std::uint8_t check = SecdedEncode(word);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SecdedDecode(word, check));
  }
}
BENCHMARK(BM_SecdedDecodeClean);

void BM_Xoshiro(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_Xoshiro);

void BM_DramRead(benchmark::State& state) {
  SimClock clock;
  DramConfig config;
  config.geometry = DramGeometry::Tiny();
  config.profile = DramProfile::Invulnerable();
  DramDevice dram(config, MakeLinearMapper(config.geometry), clock);
  std::uint8_t buf[4];
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dram.read(DramAddr(addr % 2048), buf));
    addr += 4;
  }
}
BENCHMARK(BM_DramRead);

void BM_DramHammerActivation(benchmark::State& state) {
  // The disturbance-check cost per activation with vulnerable rows.
  SimClock clock;
  DramConfig config;
  config.geometry = DramGeometry::Tiny();
  config.profile = DramProfile::Testbed();
  config.profile.vulnerable_row_fraction = 1.0;
  DramDevice dram(config, MakeLinearMapper(config.geometry), clock);
  std::uint8_t byte;
  bool left = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dram.read(DramAddr(left ? 128 : 3 * 128), {&byte, 1}));
    left = !left;
  }
}
BENCHMARK(BM_DramHammerActivation);

/// Device used by the scalar-vs-batched hammer comparison: every row
/// vulnerable (worst case for the early-out logic) but with testbed-level
/// thresholds, i.e. the common regime where aggressors are hammered hard
/// without crossing a threshold on every window.
std::unique_ptr<DramDevice> MakeHammerDevice(SimClock& clock,
                                             bool trr = false) {
  DramConfig config;
  config.geometry = DramGeometry{.channels = 1,
                                 .dimms_per_channel = 1,
                                 .ranks_per_dimm = 1,
                                 .banks_per_rank = 2,
                                 .rows_per_bank = 256,
                                 .row_bytes = 1024};
  config.profile = DramProfile::Testbed();
  config.profile.vulnerable_row_fraction = 1.0;
  config.seed = 99;
  if (trr) {
    // Threshold low enough that the tracker fires repeatedly over the
    // bench workload: the batched path must replay real emissions, not
    // coast through an emission-free run.
    config.mitigations.trr = true;
    config.mitigations.trr_config.activation_threshold = 5000;
  }
  return std::make_unique<DramDevice>(config, MakeLinearMapper(config.geometry),
                                      clock);
}

void BM_HammerPairScalar(benchmark::State& state) {
  SimClock clock;
  auto dram = MakeHammerDevice(clock);
  for (auto _ : state) {
    dram->hammer_pair_scalar(9, 11, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_HammerPairScalar);

void BM_HammerPairBatched(benchmark::State& state) {
  SimClock clock;
  auto dram = MakeHammerDevice(clock);
  for (auto _ : state) {
    dram->hammer_pair(9, 11, 64);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 128);
}
BENCHMARK(BM_HammerPairBatched);

void BM_XorMapperDecode(benchmark::State& state) {
  const DramGeometry g = DramGeometry::PaperTestbed();
  XorMapper mapper(g, {});
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.decode(DramAddr(addr)));
    addr = (addr + 8192) % g.total_bytes();
  }
}
BENCHMARK(BM_XorMapperDecode);

void BM_HashedLayoutLookup(benchmark::State& state) {
  HashedL2pLayout layout(DramAddr(0), 1 << 18, 0xC0FFEE);
  std::uint64_t lpn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(layout.entry_addr(lpn));
    lpn = (lpn + 1) % (1 << 18);
  }
}
BENCHMARK(BM_HashedLayoutLookup);

struct FtlFixtureState {
  FtlFixtureState() {
    DramConfig dc;
    dc.geometry = DramGeometry{.channels = 1,
                               .dimms_per_channel = 1,
                               .ranks_per_dimm = 1,
                               .banks_per_rank = 2,
                               .rows_per_bank = 64,
                               .row_bytes = 512};
    dc.profile = DramProfile::Invulnerable();
    dram = std::make_unique<DramDevice>(dc, MakeLinearMapper(dc.geometry),
                                        clock);
    nand = std::make_unique<NandDevice>(NandGeometry::ForCapacity(16 * kMiB));
    FtlConfig fc;
    fc.num_lbas = 4096;
    fc.hammers_per_io = 5;
    ftl = std::make_unique<Ftl>(fc, *nand, *dram);
    std::vector<std::uint8_t> block(kBlockSize, 1);
    for (std::uint64_t lba = 0; lba < 1024; ++lba) {
      (void)ftl->write(Lba(lba), block);
    }
  }
  SimClock clock;
  std::unique_ptr<DramDevice> dram;
  std::unique_ptr<NandDevice> nand;
  std::unique_ptr<Ftl> ftl;
};

void BM_FtlMappedRead(benchmark::State& state) {
  FtlFixtureState fixture;
  std::vector<std::uint8_t> out(kBlockSize);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.ftl->read(Lba(lba % 1024), out));
    ++lba;
  }
}
BENCHMARK(BM_FtlMappedRead);

void BM_FtlUnmappedRead(benchmark::State& state) {
  // The attack's fast path: trimmed reads skip flash.
  FtlFixtureState fixture;
  std::vector<std::uint8_t> out(kBlockSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.ftl->read(Lba(2048), out));
  }
}
BENCHMARK(BM_FtlUnmappedRead);

void BM_FtlWrite(benchmark::State& state) {
  FtlFixtureState fixture;
  std::vector<std::uint8_t> block(kBlockSize, 2);
  std::uint64_t lba = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.ftl->write(Lba(lba % 1024), block));
    ++lba;
  }
}
BENCHMARK(BM_FtlWrite);

void BM_SsdNvmeReadCommand(benchmark::State& state) {
  SsdConfig config = SsdConfig::DemoSetup(16 * kMiB);
  config.dram_profile = DramProfile::Invulnerable();
  SsdDevice ssd(config);
  std::vector<std::uint8_t> block(kBlockSize, 1);
  (void)ssd.controller().write(1, 0, block);
  std::vector<std::uint8_t> out(kBlockSize);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ssd.controller().read(1, 0, out));
  }
}
BENCHMARK(BM_SsdNvmeReadCommand);

/// Chrono-timed scalar-vs-batched comparison feeding BENCH_hotpath.json:
/// the acceptance metric for the batched fast path.  Uses fresh devices
/// so both sides pay the same cold-cache costs.
void ReportHammerHotPath() {
  constexpr std::uint64_t kBatches = 10000;
  constexpr std::uint64_t kPairs = 64;  // per batch
  constexpr int kRepeats = 5;

  // Best-of-N timing on a fresh device per repetition: the batched side
  // runs at ~1 ns/pair, so single-shot ratios are noisy enough to trip
  // the CI trajectory gate on scheduler jitter alone.  Min time is the
  // standard stable estimator for a fixed workload.
  const auto time_hammer = [&](bool trr, bool batched,
                               DramStats* stats_out) {
    double best = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      SimClock clock;
      auto dram = MakeHammerDevice(clock, trr);
      const double t0 = bench::HostSeconds();
      for (std::uint64_t i = 0; i < kBatches; ++i) {
        if (batched) {
          dram->hammer_pair(9, 11, kPairs);
        } else {
          dram->hammer_pair_scalar(9, 11, kPairs);
        }
      }
      const double elapsed = bench::HostSeconds() - t0;
      if (rep == 0 || elapsed < best) best = elapsed;
      if (stats_out != nullptr) *stats_out = dram->stats();
    }
    return best;
  };

  DramStats batched_stats;
  const double scalar_s = time_hammer(false, false, nullptr);
  const double batched_s = time_hammer(false, true, &batched_stats);
  const std::uint64_t activations = batched_stats.activations;

  // The same comparison with TRR enabled: the batched path replays the
  // tracker analytically instead of falling back to scalar, and that
  // replay must stay comfortably faster than per-event simulation.
  DramStats trr_scalar_stats;
  DramStats trr_batched_stats;
  const double trr_scalar_s = time_hammer(true, false, &trr_scalar_stats);
  const double trr_batched_s = time_hammer(true, true, &trr_batched_stats);
  RHSD_CHECK_MSG(
      trr_batched_stats.trr_refreshes == trr_scalar_stats.trr_refreshes,
      "batched TRR replay diverged from scalar in the bench");
  RHSD_CHECK_MSG(trr_scalar_stats.trr_refreshes > 0,
                 "TRR bench config never fired a target refresh");

  // Wide multi-row patterns: many distinct rows per replayed chunk.
  // The row-commit tables inside hammer_pattern() used to pay an
  // O(P^2) linear scan once patterns grew past a handful of rows; the
  // indexed lookup keeps per-activation cost flat, and this point
  // feeds the trajectory gate so it stays that way.
  double wide_acts_per_s = 0;
  {
    constexpr std::uint64_t kWideRows = 64;
    constexpr std::uint64_t kCmds = 512;
    constexpr std::uint64_t kRepeat = 5;
    constexpr std::uint64_t kChunks = 200;
    std::vector<std::uint64_t> rows;
    rows.reserve(kWideRows);
    for (std::uint64_t r = 0; r < kWideRows; ++r) {
      rows.push_back(r * 4);  // 64 distinct rows in one bank
    }
    const std::vector<std::uint64_t> times(kCmds, 0);
    double best = 0;
    for (int rep = 0; rep < kRepeats; ++rep) {
      SimClock clock;
      auto dram = MakeHammerDevice(clock);
      const double t0 = bench::HostSeconds();
      for (std::uint64_t i = 0; i < kChunks; ++i) {
        const bool ok = dram->hammer_pattern(rows, kCmds, kRepeat, times, {});
        RHSD_CHECK_MSG(ok, "hazard-free wide pattern aborted");
      }
      const double elapsed = bench::HostSeconds() - t0;
      if (rep == 0 || elapsed < best) best = elapsed;
    }
    wide_acts_per_s = static_cast<double>(kChunks * kCmds * kRepeat) / best;
  }

  double ftl_read_ns = 0;
  {
    // The attack's amplified hot path end to end: unmapped FTL reads
    // with hammers_per_io = 5 now ride the batched repeat_read.
    FtlFixtureState fixture;
    std::vector<std::uint8_t> out(kBlockSize);
    constexpr std::uint64_t kReads = 20000;
    const double t0 = bench::HostSeconds();
    for (std::uint64_t i = 0; i < kReads; ++i) {
      benchmark::DoNotOptimize(fixture.ftl->read(Lba(2048), out));
    }
    ftl_read_ns = (bench::HostSeconds() - t0) / kReads * 1e9;
  }

  const double scalar_ns = scalar_s / (kBatches * kPairs) * 1e9;
  const double batched_ns = batched_s / (kBatches * kPairs) * 1e9;
  const double trr_scalar_ns = trr_scalar_s / (kBatches * kPairs) * 1e9;
  const double trr_batched_ns = trr_batched_s / (kBatches * kPairs) * 1e9;
  bench::BenchReport report;
  report.set("hammer_scalar_ns_per_pair", scalar_ns);
  report.set("hammer_batched_ns_per_pair", batched_ns);
  report.set("hammer_batched_speedup", scalar_ns / batched_ns);
  report.set("hammer_batched_activations_per_s",
             static_cast<double>(activations) / batched_s);
  report.set("hammer_trr_scalar_ns_per_pair", trr_scalar_ns);
  report.set("hammer_trr_batched_ns_per_pair", trr_batched_ns);
  report.set("hammer_batched_trr_speedup", trr_scalar_ns / trr_batched_ns);
  report.set("hammer_pattern_wide_acts_per_s", wide_acts_per_s);
  report.set("ftl_unmapped_read_ns_per_io", ftl_read_ns);
  report.write();
  std::printf(
      "\nhot path: scalar %.1f ns/pair, batched %.1f ns/pair "
      "(%.1fx), %.0f activations/s; with TRR %.1f -> %.1f ns/pair "
      "(%.1fx); wide pattern %.0f acts/s -> BENCH_hotpath.json\n",
      scalar_ns, batched_ns, scalar_ns / batched_ns,
      static_cast<double>(activations) / batched_s, trr_scalar_ns,
      trr_batched_ns, trr_scalar_ns / trr_batched_ns, wide_acts_per_s);
}

}  // namespace
}  // namespace rhsd

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rhsd::ReportHammerHotPath();
  return 0;
}
