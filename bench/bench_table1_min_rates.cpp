// Table 1: "Reported minimal access rate to trigger bitflips."
//
// For each DRAM generation surveyed by the paper we instantiate the
// corresponding DisturbanceModel profile and *measure* — by actually
// driving the simulated DRAM with a double-sided access pattern at a
// controlled rate and binary-searching the lowest total access rate that
// flips at least one bit inside a refresh window.  The measurement
// methodology mirrors the cited studies: pick the most vulnerable row
// found on the device, hammer for one window per candidate rate.
//
// Expectation: measured rates reproduce the paper's Table 1 column
// (this validates that the model's threshold calibration is faithful;
// the calibration derivation lives in dram/profiles.hpp).
// Each generation's measurement is an independent simulated testbed, so
// the rows run on the parallel experiment engine and print in table
// order afterwards — identical results for any thread count.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_report.hpp"
#include "dram/dram_device.hpp"
#include "exec/experiment_engine.hpp"
#include "exec/thread_pool.hpp"

using namespace rhsd;

namespace {

struct Testbed {
  explicit Testbed(const DramProfile& profile) {
    DramConfig config;
    config.geometry = DramGeometry{.channels = 1,
                                   .dimms_per_channel = 1,
                                   .ranks_per_dimm = 1,
                                   .banks_per_rank = 1,
                                   .rows_per_bank = 256,
                                   .row_bytes = 1024};
    config.profile = profile;
    config.seed = 0xB16B00B5;
    dram = std::make_unique<DramDevice>(
        config, MakeLinearMapper(config.geometry), clock);
  }

  /// The most vulnerable row on this device instance (lowest cell
  /// threshold), as an attacker's templating pass would find.
  std::uint64_t most_vulnerable_row() {
    std::uint64_t best_row = 0;
    double best = 1e300;
    for (std::uint64_t row = 1; row + 1 < 256; ++row) {
      const auto& cells = dram->disturbance().cells(row);
      if (!cells.empty() && cells.front().threshold < best) {
        best = cells.front().threshold;
        best_row = row;
      }
    }
    return best_row;
  }

  /// Prime `row` so every vulnerable cell is observable.
  void prime(std::uint64_t row) {
    std::vector<std::uint8_t> data(1024, 0);
    for (const VulnCell& cell : dram->disturbance().cells(row)) {
      if (cell.failure_value == 0) {
        data[cell.byte_offset] |= static_cast<std::uint8_t>(1u << cell.bit);
      }
    }
    dram->poke(DramAddr(row * 1024), data);
  }

  /// Hammer `row`'s neighbors double-sided at `rate` accesses/second
  /// for one refresh window; true if any bit flipped.
  bool flips_at_rate(std::uint64_t row, double rate) {
    // Start at a fresh window boundary.
    const std::uint64_t window_ns = dram->refresh_window_ns();
    clock.advance_ns(window_ns - (clock.now_ns() % window_ns));
    prime(row);
    const std::uint64_t before = dram->stats().bitflips;
    const auto accesses =
        static_cast<std::uint64_t>(rate * 0.064);
    const double step_ns = 1e9 / rate;
    std::uint8_t byte;
    double t = 0;
    for (std::uint64_t i = 0; i < accesses; ++i) {
      const std::uint64_t target = (i % 2 == 0) ? row - 1 : row + 1;
      (void)dram->read(DramAddr(target * 1024), {&byte, 1});
      if (dram->stats().bitflips != before) return true;  // early out
      t += step_ns;
      if (t >= 1.0) {
        clock.advance_ns(static_cast<std::uint64_t>(t));
        t = 0;
      }
    }
    return dram->stats().bitflips != before;
  }

  SimClock clock;
  std::unique_ptr<DramDevice> dram;
};

}  // namespace

int main() {
  std::printf("== Table 1: minimal access rate to trigger bitflips ==\n");
  std::printf("(paper column vs. rate measured on the simulated device)\n\n");
  std::printf("%-6s %-10s %-14s %12s %14s %8s\n", "year", "refs", "type",
              "paper (K/s)", "measured (K/s)", "ratio");
  std::printf("%.*s\n", 70,
              "----------------------------------------------------------"
              "------------");

  const std::vector<DramProfile> profiles = Table1Profiles();
  exec::ThreadPool pool;
  const double t0 = bench::HostSeconds();
  const std::vector<double> measured = exec::RunTrials(
      pool, profiles.size(), /*base_seed=*/0,
      [&](std::uint64_t i, std::uint64_t /*seed*/) {
        DramProfile profile = profiles[i];
        profile.vulnerable_row_fraction = 0.25;
        Testbed bed(profile);
        const std::uint64_t row = bed.most_vulnerable_row();

        // Binary-search the minimal flipping rate.
        double lo = 10e3;                 // definitely safe
        double hi = 40e6;                 // definitely flips
        for (int iter = 0; iter < 18; ++iter) {
          const double mid = (lo + hi) / 2;
          if (bed.flips_at_rate(row, mid)) {
            hi = mid;
          } else {
            lo = mid;
          }
        }
        return hi / 1e3;
      });
  const double elapsed_s = bench::HostSeconds() - t0;

  for (std::size_t i = 0; i < profiles.size(); ++i) {
    const DramProfile& profile = profiles[i];
    std::printf("%-6d %-10s %-14s %12.0f %14.0f %8.2f\n",
                profile.year, profile.refs.c_str(), profile.name.c_str(),
                profile.min_rate_kaccess_s, measured[i],
                measured[i] / profile.min_rate_kaccess_s);
  }
  std::printf(
      "\nshape check: DDR3 needs millions of accesses per second, newer\n"
      "DDR4/LPDDR4 parts flip well below 1M/s — within reach of NVMe\n"
      "interfaces (§2.3: ~780K/s suffices on modern parts).\n");

  bench::BenchReport report;
  report.set("table1_rows_per_s", profiles.size() / elapsed_s);
  report.set("table1_threads", static_cast<double>(pool.size()));
  report.write();
  return 0;
}
