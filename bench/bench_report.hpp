// Perf-trajectory output for the benches.
//
// Benches that measure *host* performance (ns per simulated I/O,
// activations/s, trials/s, thread scaling) record their numbers here;
// write() merges them into one flat JSON file (default
// BENCH_hotpath.json in the current directory) so successive runs and
// successive benches accumulate into a single machine-readable record.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace rhsd::bench {

class BenchReport {
 public:
  explicit BenchReport(std::string path = "BENCH_hotpath.json");

  /// Set (or overwrite) one metric.  Keys should be snake_case and
  /// self-describing, e.g. "hammer_batched_ns_per_io".
  void set(const std::string& key, double value);

  /// Merge with whatever is already in the file and rewrite it.
  /// Existing keys not set in this run are preserved.
  void write() const;

 private:
  std::string path_;
  std::vector<std::pair<std::string, double>> entries_;
};

/// Monotonic host-time stamp in seconds (std::chrono::steady_clock).
[[nodiscard]] double HostSeconds();

}  // namespace rhsd::bench
