// Extension: self-hammering filesystems (no attacker at all).
//
// A corollary of the paper's thesis discovered by this reproduction:
// heavy filesystem *metadata* traffic concentrates L2P accesses on a few
// DRAM rows — every file create/delete rewrites the same bitmap, inode
// table and directory blocks — so a completely benign but metadata-hot
// workload can rowhammer the device's own mapping table.  The bench
// runs a create/delete churn loop with NO attacker tenant activity and
// reports DRAM bitflips as a function of the firmware amplification
// factor and DRAM vulnerability.
#include <cstdio>

#include "attack/row_templating.hpp"
#include "cloud/cloud_host.hpp"
#include "fs/fsck.hpp"

using namespace rhsd;

namespace {

struct ChurnResult {
  std::uint64_t fs_ops = 0;
  std::uint64_t l2p_accesses = 0;
  std::uint64_t hottest_row_acts = 0;
  std::uint64_t flips = 0;
  std::size_t fsck_errors = 0;
};

ChurnResult RunChurn(std::uint32_t hammers_per_io, double min_rate_kps) {
  SsdConfig config = SsdConfig::DemoSetup(64 * kMiB);
  config.hammers_per_io = hammers_per_io;
  config.dram_profile = DramProfile::Testbed();
  config.dram_profile.min_rate_kaccess_s = min_rate_kps;
  config.dram_profile.vulnerable_row_fraction = 1.0;
  CloudHost host(config);
  fs::FileSystem& vfs = host.victim_fs();
  const fs::Credentials user{kAttackerUid};

  // Benign churn: create a small file, write a block, delete it; all
  // allocations hit the same bitmap/inode-table/directory LBAs.
  std::vector<std::uint8_t> block(kBlockSize, 0x11);
  ChurnResult result;
  for (int round = 0; round < 4000; ++round) {
    auto ino = vfs.create(user, "/churn", 0644);
    if (!ino.ok()) break;
    (void)vfs.write(user, *ino, 0, block);
    (void)vfs.unlink(user, "/churn");
    result.fs_ops += 3;
  }

  result.l2p_accesses = host.ssd().ftl().stats().l2p_dram_reads +
                        host.ssd().ftl().stats().l2p_dram_writes;
  result.flips = host.ssd().dram().stats().bitflips;

  // Find the hottest table row this window.
  L2pRowMap map(host.ssd().ftl().layout(), host.ssd().dram().mapper());
  for (const std::uint64_t row : map.rows()) {
    result.hottest_row_acts = std::max(
        result.hottest_row_acts, host.ssd().dram().row_activations(row));
  }
  result.fsck_errors = fs::Fsck::Check(vfs).errors.size();
  return result;
}

}  // namespace

int main() {
  std::printf("== Extension: filesystem metadata traffic as a hammer ==\n");
  std::printf("(benign create/write/delete churn in the victim VM; no "
              "attacker activity at all)\n\n");
  std::printf("%-22s %6s %10s %12s %14s %8s %6s\n", "DRAM profile",
              "ampl.", "fs ops", "L2P accs", "hottest row", "flips",
              "fsck");
  std::printf("%.*s\n", 84,
              "----------------------------------------------------------"
              "---------------------------");
  struct Row {
    const char* name;
    double min_rate_kps;
    std::uint32_t hammers;
  };
  const Row rows[] = {
      {"testbed DDR3 (3M/s)", 3000.0, 1},
      {"testbed DDR3 (3M/s)", 3000.0, 5},
      {"DDR4 new (313K/s)", 313.0, 1},
      {"DDR4 new (313K/s)", 313.0, 5},
      {"LPDDR4 new (150K/s)", 150.0, 1},
      {"LPDDR4 new (150K/s)", 150.0, 5},
  };
  for (const Row& row : rows) {
    const ChurnResult r = RunChurn(row.hammers, row.min_rate_kps);
    std::printf("%-22s %4ux %10llu %12llu %14llu %8llu %6zu\n", row.name,
                row.hammers,
                static_cast<unsigned long long>(r.fs_ops),
                static_cast<unsigned long long>(r.l2p_accesses),
                static_cast<unsigned long long>(r.hottest_row_acts),
                static_cast<unsigned long long>(r.flips),
                r.fsck_errors);
  }
  std::printf(
      "\nshape check: on vulnerable parts, ordinary metadata-hot\n"
      "workloads reach per-row activation counts in flip range — the\n"
      "paper's attack surface exists without any attacker-crafted\n"
      "pattern, which strengthens its call for device-level hardening.\n");
  return 0;
}
