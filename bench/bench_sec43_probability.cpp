// §4.3: probability of a useful bitflip.
//
// Reproduces the paper's closed form p = F_v(F_v + 2F_a) / (4 C_v PB),
// its worked example (~7% per cycle, >50% after 10 cycles), validates
// the closed form against a Monte-Carlo simulation of flip placement,
// and sweeps the spray parameters.
//
// The Monte Carlo runs on the parallel experiment engine: trials are
// seeded per-index, so the estimates are identical for any thread
// count (set RHSD_THREADS to override the default).
#include <cstdio>

#include "attack/probability_model.hpp"
#include "bench_report.hpp"
#include "exec/experiment_engine.hpp"
#include "exec/thread_pool.hpp"

using namespace rhsd;

int main() {
  std::printf("== §4.3: probability of a useful bitflip ==\n\n");

  exec::ThreadPool pool;

  // The worked example: equal partitions, attacker fills 25% of the
  // victim partition and 100% of its own.
  const AttackParameters example = AttackParameters::PaperExample();
  const double p = SingleCycleSuccess(example);
  constexpr std::uint64_t kTrials = 4'000'000;
  const double t0 = bench::HostSeconds();
  const double mc = SimulateSingleCycleParallel(example, 20210727, kTrials, pool);
  const double mc_s = bench::HostSeconds() - t0;
  std::printf("paper example (C_a = C_v = PB/2, F_v = C_v/4, F_a = C_a):\n");
  std::printf("  closed form : %.4f   (paper: ~0.07)\n", p);
  std::printf("  monte carlo : %.4f   (4M trials, %zu threads, %.1fM trials/s)\n\n",
              mc, pool.size(), kTrials / mc_s / 1e6);

  std::printf("cumulative success over attack cycles (1-(1-p)^n):\n");
  std::printf("  %-8s", "cycles");
  for (int n = 1; n <= 10; ++n) std::printf(" %6d", n);
  std::printf("\n  %-8s", "P(leak)");
  for (int n = 1; n <= 10; ++n) {
    std::printf(" %5.1f%%", 100 * CumulativeSuccess(p, n));
  }
  std::printf("\n  (paper: \"repeating the attack cycle for 10 times "
              "brings the chances\n   of success to more than 50%%\" — "
              "here %.1f%%)\n\n",
              100 * CumulativeSuccess(p, 10));

  std::printf("sweep: victim spray fraction F_v/C_v (F_a = C_a fixed):\n");
  std::printf("  %-12s %-14s %-14s %-12s\n", "F_v/C_v", "closed form",
              "monte carlo", "cycles->50%");
  for (const double fv_fraction : {0.05, 0.10, 0.25, 0.50, 1.00}) {
    AttackParameters sweep = AttackParameters::PaperExample();
    sweep.victim_spray = sweep.victim_blocks * fv_fraction;
    const double cf = SingleCycleSuccess(sweep);
    const double sim = SimulateSingleCycleParallel(
        sweep, static_cast<std::uint64_t>(fv_fraction * 1e6), 1'000'000, pool);
    int cycles_to_half = 0;
    while (CumulativeSuccess(cf, cycles_to_half) < 0.5 &&
           cycles_to_half < 1000) {
      ++cycles_to_half;
    }
    std::printf("  %10.0f%% %14.4f %14.4f %12d\n", 100 * fv_fraction, cf,
                sim, cycles_to_half);
  }

  std::printf("\nsweep: attacker spray F_a/C_a (F_v = C_v/4 fixed):\n");
  std::printf("  %-12s %-14s\n", "F_a/C_a", "closed form");
  for (const double fa_fraction : {0.0, 0.25, 0.50, 1.00}) {
    AttackParameters sweep = AttackParameters::PaperExample();
    sweep.attacker_spray = sweep.attacker_blocks * fa_fraction;
    std::printf("  %10.0f%% %14.4f\n", 100 * fa_fraction,
                SingleCycleSuccess(sweep));
  }
  std::printf(
      "\nshape check: ~7%% per cycle at the paper's parameters, >50%%\n"
      "within 10 cycles; success scales with both spray terms.\n");

  bench::BenchReport report;
  report.set("sec43_monte_carlo_trials_per_s", kTrials / mc_s);
  report.set("sec43_threads", static_cast<double>(pool.size()));
  report.write();
  return 0;
}
