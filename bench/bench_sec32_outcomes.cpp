// §3.2: the three attack outcomes — data corruption, information leak,
// privilege escalation — measured on the same class of shared-SSD hosts.
//
// "The FTL Rowhammering vulnerability leads to several security
// sensitive outcomes: (1) data corruption, (2) information leak, and
// (3) privilege escalation … [escalation] is the hardest to exploit."
#include <cstdio>
#include <cstring>

#include "attack/end_to_end.hpp"
#include "attack/escalation.hpp"
#include "fs/fsck.hpp"

using namespace rhsd;

namespace {

SsdConfig BaseConfig() {
  SsdConfig config = SsdConfig::DemoSetup(64 * kMiB);
  config.dram_profile = DramProfile::Testbed();
  config.dram_profile.vulnerable_row_fraction = 0.5;
  return config;
}

void CorruptionOutcome() {
  std::printf("--- outcome (1): data corruption ---\n");
  // Fill the victim FS with ordinary files, hammer, then fsck.
  CloudHost host(BaseConfig());
  fs::FileSystem& vfs = host.victim_fs();
  const fs::Credentials user{kAttackerUid};
  // Per-file unique content so a redirected block is visible even when
  // it lands on another file's page.
  auto file_data = [](int f) {
    std::vector<std::uint8_t> data(8 * kBlockSize);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::uint8_t>(f * 131 + i / kBlockSize);
    }
    return data;
  };
  int files = 0;
  for (; files < 300; ++files) {
    auto ino = vfs.create(user, "/doc" + std::to_string(files), 0644);
    if (!ino.ok()) break;
    if (!vfs.write(user, *ino, 0, file_data(files)).ok()) break;
  }
  const fs::FsckReport before = fs::Fsck::Check(vfs);

  L2pRowMap map(host.ssd().ftl().layout(), host.ssd().dram().mapper());
  AggressorFinder finder(map);
  const std::uint64_t half = BaseConfig().num_lbas() / 2;
  const LpnRange attacker{half, 2 * half};
  const auto triples =
      finder.cross_partition_triples(attacker, LpnRange{0, half});
  HammerOrchestrator hammer(host.attacker_tenant(), finder, attacker);
  // Verify content after each hammer pass (rewriting would heal the
  // corrupted entries), then rewrite so the recharged cells can flip
  // again in the next round.
  int corrupted_files = 0;
  int unreadable_files = 0;
  std::vector<std::uint8_t> out(8 * kBlockSize);
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < std::min<std::size_t>(triples.size(), 32);
         ++i) {
      (void)hammer.hammer_triple(triples[i], HammerMode::kDoubleSided,
                                 0.1);
    }
    for (int f = 0; f < files; ++f) {
      auto ino = vfs.lookup(user, "/doc" + std::to_string(f));
      if (!ino.ok()) {
        ++unreadable_files;
        continue;
      }
      const auto expected = file_data(f);
      auto n = vfs.read(user, *ino, 0, out);
      if (!n.ok() || *n != expected.size()) {
        ++unreadable_files;
      } else if (out != expected) {
        ++corrupted_files;
      }
      (void)vfs.write(user, *ino, 0, expected);  // heal for next round
    }
  }
  const fs::FsckReport after = fs::Fsck::Check(vfs);

  std::printf("  %d user files; fsck before: %zu errors, after: %zu "
              "errors; %llu DRAM bitflips\n",
              files, before.errors.size(), after.errors.size(),
              static_cast<unsigned long long>(
                  host.ssd().dram().stats().bitflips));
  std::printf("  silent content corruption: %d file(s) changed, %d "
              "unreadable\n",
              corrupted_files, unreadable_files);
  for (std::size_t i = 0; i < std::min<std::size_t>(after.errors.size(), 4);
       ++i) {
    std::printf("    fsck: %s\n", after.errors[i].c_str());
  }
  std::printf("  => random corruption of file data (silent!) and, when a "
              "flip lands on metadata, structural damage (§3.2: "
              "\"rendering the file system unmountable\")\n\n");
}

void LeakOutcome() {
  std::printf("--- outcome (2): information leak ---\n");
  CloudHost host(BaseConfig());
  const char* marker = "CONFIDENTIAL-CUSTOMER-DATABASE";
  std::vector<std::uint8_t> secret(kBlockSize, 0);
  std::memcpy(secret.data(), marker, std::strlen(marker));
  RHSD_CHECK(host.install_secret("/shadow", secret).ok());

  EndToEndConfig attack;
  attack.files_per_cycle = 400;
  attack.max_cycles = 20;
  attack.hammer_seconds_per_triple = 0.05;
  attack.max_triples_per_cycle = 16;
  attack.targets_per_cycle = 512;
  attack.dump_blocks = 512;
  attack.sweep_targets = false;
  attack.adaptive_templating = true;  // online templating (§4.2)
  attack.secret_marker.assign(marker, marker + std::strlen(marker));
  EndToEndAttack e2e(host, attack);
  auto report = e2e.run();
  RHSD_CHECK(report.ok());
  std::printf("  %s after %u cycles (%.1f simulated s, %llu flips, "
              "adaptive templating on)\n",
              report->success ? "secret LEAKED" : "no leak",
              report->cycles_run, report->total_sim_seconds,
              static_cast<unsigned long long>(report->total_flips));
  std::printf("  => file-system permissions bypassed via the attacker's "
              "own files (Figure 3)\n\n");
}

void EscalationOutcome() {
  std::printf("--- outcome (3): privilege escalation ---\n");
  CloudHost host(BaseConfig());
  // A lived-in victim system: most of the partition holds real data, so
  // "write-something-somewhere" events (victim LBAs rebound to attacker
  // pages) become observable.
  {
    fs::FileSystem& vfs = host.victim_fs();
    const fs::Credentials user{kAttackerUid};
    std::vector<std::uint8_t> data(16 * kBlockSize, 0x7A);
    for (int f = 0; f < 300; ++f) {
      auto ino = vfs.create(user, "/home" + std::to_string(f), 0644);
      if (!ino.ok() || !vfs.write(user, *ino, 0, data).ok()) break;
    }
  }
  EscalationConfig config;
  config.binary_blocks = 512;  // a big, juicy setuid target
  config.max_cycles = 24;
  config.hammer_seconds_per_triple = 0.05;
  config.max_triples_per_cycle = 16;
  PrivilegeEscalationScenario scenario(host, config);
  auto report = scenario.run();
  RHSD_CHECK(report.ok());

  std::uint32_t crashes = 0;
  for (const EscalationCycle& c : report->cycles) {
    if (c.exec == ExecOutcome::kCrashes) ++crashes;
  }
  std::printf("  %u cycles: %llu flips, %u write-something-somewhere "
              "events, %u cycles with a crashed binary\n",
              report->cycles_run,
              static_cast<unsigned long long>(report->total_flips),
              report->total_wss_events, crashes);
  std::printf("  setuid binary outcome: %s\n",
              report->escalated      ? "ATTACKER CODE RAN AS ROOT"
              : report->binary_crashed ? "binary corrupted (crash), no "
                                         "escalation"
                                       : "binary intact");
  std::printf("  => \"this vulnerability is the hardest to exploit\" "
              "(§3.2): redirects to attacker polyglots happen, but "
              "hitting the binary's own LBAs is rare\n");
}

}  // namespace

int main() {
  std::printf("== §3.2: the three FTL-rowhammer outcomes ==\n\n");
  CorruptionOutcome();
  LeakOutcome();
  EscalationOutcome();
  return 0;
}
