// §4.1/§4.2 layout ablation: how many double-sided aggressor/victim row
// sets ("vulnerable sets") exist, as a function of the memory
// controller's mapping function and the L2P table layout.
//
// The paper: "we were able to identify 32 sets of three vulnerable rows
// that could potentially place the victim row in a separate memory
// partition from the aggressors. We note that 32 sets of vulnerable
// rows is on the lower end; other DRAM mapping functions or L2P
// structures (e.g., hash tables) could generate many more vulnerable
// pairs" — and "a linear layout is *more challenging* for a two-sided
// rowhammering attack than a hash map."
#include <cstdio>
#include <iterator>
#include <memory>
#include <vector>

#include "attack/aggressor_finder.hpp"
#include "exec/experiment_engine.hpp"
#include "ssd/ssd_device.hpp"

using namespace rhsd;

namespace {

struct Variant {
  const char* name;
  bool xor_mapping;
  std::uint32_t remap_bits;
  L2pLayoutKind layout;
};

struct Counts {
  std::size_t rows = 0;
  std::size_t triples = 0;
  std::size_t cross = 0;
  std::size_t cross_vulnerable = 0;
  std::size_t victim_entries_reachable = 0;
};

Counts Count(const Variant& v) {
  SsdConfig config = SsdConfig::PaperSetup();  // 1 GiB, 16 GiB DDR3
  config.xor_mapping = v.xor_mapping;
  config.xor_config.row_remap_bits = v.remap_bits;
  config.l2p_layout = v.layout;
  config.device_key = 0xFEEDBEEF;
  config.dram_profile.vulnerable_row_fraction = 0.25;
  SsdDevice ssd(config);

  L2pRowMap map(ssd.ftl().layout(), ssd.dram().mapper());
  AggressorFinder finder(map);
  const std::uint64_t half = config.num_lbas() / 2;
  const LpnRange victim{0, half};
  const LpnRange attacker{half, 2 * half};

  Counts counts;
  counts.rows = map.rows().size();
  counts.triples = finder.all_triples().size();
  const auto cross = finder.cross_partition_triples(attacker, victim);
  counts.cross = cross.size();
  for (const TripleSet& t : cross) {
    if (ssd.dram().disturbance().row_is_vulnerable(t.victim_row)) {
      ++counts.cross_vulnerable;
      for (const std::uint64_t lpn : map.lpns_in_row(t.victim_row)) {
        if (victim.contains(lpn)) ++counts.victim_entries_reachable;
      }
    }
  }
  return counts;
}

}  // namespace

int main() {
  std::printf("== Layout ablation: double-sided placement opportunities "
              "==\n");
  std::printf("(1 GiB SSD, 1 MiB L2P table, 16 GiB testbed DRAM, two "
              "equal partitions,\n 25%% of rows rowhammerable)\n\n");
  std::printf("%-44s %6s %8s %7s %8s %10s\n", "configuration", "rows",
              "triples", "cross", "x-vuln", "entries");
  std::printf("%.*s\n", 90,
              "----------------------------------------------------------"
              "--------------------------------");

  const Variant variants[] = {
      {"linear mapping, linear L2P", false, 0, L2pLayoutKind::kLinear},
      {"XOR banks only (no row remap), linear L2P", true, 0,
       L2pLayoutKind::kLinear},
      {"XOR + row remap (paper-like), linear L2P", true, 4,
       L2pLayoutKind::kLinear},
      {"XOR + row remap, hashed L2P (key known)", true, 4,
       L2pLayoutKind::kHashed},
  };
  // One SsdDevice per variant: independent trials, run concurrently and
  // printed in canonical order afterwards.
  exec::ThreadPool pool;
  const std::vector<Counts> results = exec::RunTrials(
      pool, std::size(variants), /*base_seed=*/0,
      [&variants](std::uint64_t trial, std::uint64_t) {
        return Count(variants[trial]);
      });
  for (std::size_t i = 0; i < std::size(variants); ++i) {
    const Counts& c = results[i];
    std::printf("%-44s %6zu %8zu %7zu %8zu %10zu\n", variants[i].name,
                c.rows, c.triples, c.cross, c.cross_vulnerable,
                c.victim_entries_reachable);
  }
  std::printf(
      "\ncolumns: rows = DRAM rows holding L2P entries; triples = 3-row\n"
      "runs fully inside the table; cross = victim row holds victim-\n"
      "partition entries while both aggressors are attacker-reachable\n"
      "(paper found 32 such sets); x-vuln = cross sets whose victim row\n"
      "is actually rowhammerable; entries = victim L2P entries coverable.\n"
      "\nshape check: a purely linear hierarchy leaves (almost) nothing;\n"
      "the memory controller's interleaving + in-DRAM row remapping\n"
      "creates tens of sets (paper: 32, \"on the lower end\"); a hashed\n"
      "L2P layout whose structure the attacker learned offline yields\n"
      "at least as many (\"could generate many more vulnerable pairs\").\n");
  return 0;
}
