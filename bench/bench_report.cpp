#include "bench_report.hpp"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace rhsd::bench {
namespace {

/// Parse the flat `{"key": number, ...}` files write() produces.  Not a
/// general JSON parser — just enough to round-trip our own output (and
/// to ignore anything it does not understand).
std::vector<std::pair<std::string, double>> ParseFlat(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    const std::size_t key_end = text.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    const std::string key = text.substr(pos + 1, key_end - pos - 1);
    std::size_t colon = text.find(':', key_end);
    if (colon == std::string::npos) break;
    char* end = nullptr;
    const double value = std::strtod(text.c_str() + colon + 1, &end);
    if (end != text.c_str() + colon + 1) out.emplace_back(key, value);
    pos = key_end + 1;
  }
  return out;
}

}  // namespace

BenchReport::BenchReport(std::string path) : path_(std::move(path)) {}

void BenchReport::set(const std::string& key, double value) {
  for (auto& [k, v] : entries_) {
    if (k == key) {
      v = value;
      return;
    }
  }
  entries_.emplace_back(key, value);
}

void BenchReport::write() const {
  // Merge: existing keys keep their order and are overwritten in place;
  // new keys append.  Lets every bench in the suite contribute to the
  // same file without clobbering the others.
  std::vector<std::pair<std::string, double>> merged;
  {
    std::ifstream in(path_);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      merged = ParseFlat(ss.str());
    }
  }
  for (const auto& [key, value] : entries_) {
    bool found = false;
    for (auto& [k, v] : merged) {
      if (k == key) {
        v = value;
        found = true;
        break;
      }
    }
    if (!found) merged.emplace_back(key, value);
  }

  std::ofstream out(path_, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_report: cannot write %s\n", path_.c_str());
    return;
  }
  out << "{\n";
  for (std::size_t i = 0; i < merged.size(); ++i) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.10g", merged[i].second);
    out << "  \"" << merged[i].first << "\": " << buf
        << (i + 1 < merged.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

double HostSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace rhsd::bench
