// §2.3 / §3.1: the feasibility argument.
//
// "State-of-the-art rowhammering attacks on modern DRAM modules require
// as few as ~50K row accesses per 64ms refresh interval, i.e. ~780K
// accesses per second.  Consequently, NVMe interfaces easily allow
// sufficiently high 4KiB-based I/O rates necessary for a successful
// rowhammering attack."
//
// The matrix crosses host-interface generations (deliverable I/O rate,
// times the firmware amplification factor, split over two aggressors)
// against the Table 1 DRAM generations' minimal access rates.
// Matrix rows are computed on the parallel experiment engine (one trial
// per DRAM generation) and printed in table order afterwards.
#include <cstdio>
#include <vector>

#include "bench_report.hpp"
#include "common/hexdump.hpp"
#include "exec/experiment_engine.hpp"
#include "exec/thread_pool.hpp"
#include "nvme/iops_model.hpp"
#include "dram/profiles.hpp"

using namespace rhsd;

int main() {
  std::printf("== Feasibility: NVMe I/O rates vs DRAM hammer "
              "thresholds ==\n\n");

  struct Iface {
    HostInterface iface;
    const char* label;
  };
  const Iface interfaces[] = {
      {HostInterface::kSata, "SATA"},   {HostInterface::kPcie3, "PCIe3"},
      {HostInterface::kPcie4, "PCIe4"}, {HostInterface::kPcie5, "PCIe5"},
      {HostInterface::kCloudVm, "cloudVM"},
  };

  const std::vector<DramProfile> profiles = Table1Profiles();
  exec::ThreadPool pool;
  const double t0 = bench::HostSeconds();

  for (const std::uint32_t hammers : {1u, 5u}) {
    std::printf("--- %u L2P DRAM access(es) per I/O %s---\n", hammers,
                hammers == 5 ? "(the paper's firmware amplification) "
                             : "");
    std::printf("%-16s %10s |", "DRAM \\ iface", "needs");
    for (const Iface& entry : interfaces) {
      std::printf(" %9s", entry.label);
    }
    std::printf("\n");
    // Second header line: delivered access rates.
    std::printf("%-16s %10s |", "", "");
    for (const Iface& entry : interfaces) {
      std::printf(" %9s",
                  HumanCount(MaxIops(entry.iface) * hammers).c_str());
    }
    std::printf("\n%.*s\n", 78,
                "--------------------------------------------------------"
                "-----------------------");
    const std::vector<std::vector<bool>> rows = exec::RunTrials(
        pool, profiles.size(), /*base_seed=*/0,
        [&](std::uint64_t i, std::uint64_t /*seed*/) {
          std::vector<bool> feasible;
          for (const Iface& entry : interfaces) {
            const double delivered = MaxIops(entry.iface) * hammers;
            feasible.push_back(delivered >=
                               profiles[i].min_rate_kaccess_s * 1e3);
          }
          return feasible;
        });
    for (std::size_t i = 0; i < profiles.size(); ++i) {
      std::printf("%-16s %9sa |", profiles[i].name.c_str(),
                  HumanCount(profiles[i].min_rate_kaccess_s * 1e3).c_str());
      for (const bool feasible : rows[i]) {
        std::printf(" %9s", feasible ? "YES" : ".");
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  const double elapsed_s = bench::HostSeconds() - t0;
  std::printf(
      "shape check: without amplification only the most vulnerable\n"
      "(newer LPDDR4/DDR4) parts are reachable by today's interfaces;\n"
      "with the firmware touching each entry 5x per request — or with\n"
      "PCIe 5.0-class rates — most generations fall (§2.3's conclusion:\n"
      "\"sufficient bandwidth … is either present already in some\n"
      "devices, or will be soon\").\n");

  bench::BenchReport report;
  report.set("feasibility_matrix_s", elapsed_s);
  report.set("feasibility_threads", static_cast<double>(pool.size()));
  report.write();
  return 0;
}
