// Figure 2: attack setups — (a) direct unprivileged access vs (b) a
// helper attacker VM with privileged direct access.
//
// "We choose the setup in Figure 2 (b) because our main system is
// relatively slow, so that direct access from user space is not
// sufficiently fast for the attack."  (§4.1)  The bench measures, per
// setup and per amplification factor, the L2P access rate actually
// delivered to the device DRAM and whether hammering flips bits on the
// testbed DRAM profile (flips from direct accesses at ~3 M/s; SPDK-level
// accesses needed ~7 M/s, hence the paper's 5x amplification).
#include <cstdio>
#include <iterator>
#include <vector>

#include "attack/aggressor_finder.hpp"
#include "attack/hammer_orchestrator.hpp"
#include "cloud/cloud_host.hpp"
#include "common/hexdump.hpp"
#include "exec/experiment_engine.hpp"

using namespace rhsd;

namespace {

struct SetupResult {
  double iops = 0;
  double l2p_access_rate = 0;
  std::uint64_t flips = 0;
};

SetupResult RunSetup(HostInterface iface, std::uint32_t hammers) {
  SsdConfig config = SsdConfig::DemoSetup(64 * kMiB);
  config.dram_profile = DramProfile::Testbed();  // flips at ~3 M/s
  config.dram_profile.vulnerable_row_fraction = 1.0;
  config.host_interface = iface;
  config.hammers_per_io = hammers;
  CloudHost host(config);

  const std::uint64_t half = config.num_lbas() / 2;
  L2pRowMap map(host.ssd().ftl().layout(), host.ssd().dram().mapper());
  AggressorFinder finder(map);
  const LpnRange attacker_range{half, 2 * half};
  const auto triples = finder.cross_partition_triples(
      attacker_range, LpnRange{0, half});
  RHSD_CHECK(!triples.empty());

  // Make the flips observable regardless of entry contents.
  DramDevice& dram = host.ssd().dram();
  std::vector<std::uint8_t> block(kBlockSize, 0xAB);
  for (std::uint64_t lpn = 0; lpn < half; ++lpn) {
    RHSD_CHECK(host.ssd().controller().write(1, lpn, block).ok());
  }

  HammerOrchestrator hammer(host.attacker_tenant(), finder,
                            attacker_range);
  SetupResult result;
  const std::uint64_t reads_before =
      host.ssd().ftl().stats().l2p_dram_reads;
  const double t0 = host.ssd().clock().now_seconds();
  for (std::size_t i = 0; i < std::min<std::size_t>(triples.size(), 6);
       ++i) {
    auto stats =
        hammer.hammer_triple(triples[i], HammerMode::kDoubleSided, 0.15);
    if (stats.ok()) result.iops = stats->achieved_iops();
  }
  const double elapsed = host.ssd().clock().now_seconds() - t0;
  result.l2p_access_rate =
      static_cast<double>(host.ssd().ftl().stats().l2p_dram_reads -
                          reads_before) /
      elapsed;
  result.flips = dram.stats().bitflips;
  return result;
}

}  // namespace

int main() {
  std::printf("== Figure 2: attack setups on the slow testbed host ==\n");
  std::printf("(testbed DRAM: flips from direct accesses at ~3 M/s; SPDK-"
              "level\n accesses must reach ~7 M/s, closed by 5x "
              "amplification — §4.1)\n\n");
  std::printf("%-34s %6s %10s %12s %8s %10s\n", "setup", "ampl.", "IOPS",
              "L2P acc/s", "flips", "feasible");
  std::printf("%.*s\n", 86,
              "----------------------------------------------------------"
              "-----------------------------");

  struct Row {
    const char* name;
    HostInterface iface;
    std::uint32_t hammers;
  };
  const Row rows[] = {
      {"(a) direct, unprivileged host", HostInterface::kTestbedHost, 1},
      {"(a) direct, unprivileged host", HostInterface::kTestbedHost, 5},
      {"(b) helper attacker VM (direct)", HostInterface::kTestbedVmDirect,
       1},
      {"(b) helper attacker VM (direct)", HostInterface::kTestbedVmDirect,
       5},
      {"future: PCIe 5.0 direct", HostInterface::kPcie5, 5},
  };
  // Each setup owns its SsdDevice/CloudHost, so the rows are independent
  // trials for the experiment engine; printing stays in canonical order
  // because RunTrials returns results indexed by trial.
  exec::ThreadPool pool;
  const std::vector<SetupResult> results = exec::RunTrials(
      pool, std::size(rows), /*base_seed=*/0,
      [&rows](std::uint64_t trial, std::uint64_t) {
        return RunSetup(rows[trial].iface, rows[trial].hammers);
      });
  for (std::size_t i = 0; i < std::size(rows); ++i) {
    const SetupResult& r = results[i];
    std::printf("%-34s %4ux %10s %12s %8llu %10s\n", rows[i].name,
                rows[i].hammers, HumanCount(r.iops).c_str(),
                HumanCount(r.l2p_access_rate).c_str(),
                static_cast<unsigned long long>(r.flips),
                r.flips > 0 ? "YES" : "no");
  }
  std::printf(
      "\nshape check: the unprivileged path on the slow host cannot reach\n"
      "the required access rate even amplified; the helper VM (Figure\n"
      "2(b)) crosses it, matching the paper's choice of setup.  Faster\n"
      "interfaces make the helper unnecessary (Figure 2(a), \"in the\n"
      "future we foresee that such assistance will be unneeded\").\n");
  return 0;
}
