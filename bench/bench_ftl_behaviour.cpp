// FTL behaviour under realistic workloads: write amplification, garbage
// collection, and wear spread.
//
// Not a paper table — this is the substrate-health bench every SSD
// simulator ships.  It validates that the FTL the attack runs on behaves
// like a real log-structured FTL: WAF ~1 for sequential overwrites,
// rising under random/skewed writes as GC relocates live pages, with
// wear spread bounded by the FIFO free-block rotation.
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "fault/fault_injector.hpp"
#include "sim/workload.hpp"
#include "ssd/ssd_device.hpp"

using namespace rhsd;

namespace {

struct FtlBehaviour {
  double waf = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t relocations = 0;
  std::uint32_t min_erase = 0;
  std::uint32_t max_erase = 0;
  double measured_iops = 0;
};

FtlBehaviour Run(AccessPattern pattern, double write_fraction) {
  SsdConfig config = SsdConfig::DemoSetup(16 * kMiB);
  config.dram_profile = DramProfile::Invulnerable();
  config.partition_blocks.clear();  // single namespace
  SsdDevice ssd(config);

  const std::uint64_t ws = config.num_lbas() * 9 / 10;
  WorkloadConfig workload;
  workload.pattern = pattern;
  workload.working_set = ws;
  workload.write_fraction = write_fraction;
  workload.seed = 99;
  WorkloadGenerator generator(workload);

  // Fill once so steady state has live data everywhere.
  std::vector<std::uint8_t> block(kBlockSize, 0x33);
  for (std::uint64_t slba = 0; slba < ws; ++slba) {
    RHSD_CHECK(ssd.controller().write(1, slba, block).ok());
  }
  const FtlStats fill_stats = ssd.ftl().stats();

  // Steady-state phase.
  std::vector<std::uint8_t> out(kBlockSize);
  for (int op = 0; op < 60000; ++op) {
    const WorkloadOp o = generator.next();
    if (o.is_write) {
      RHSD_CHECK(ssd.controller().write(1, o.slba, block).ok());
    } else {
      RHSD_CHECK(ssd.controller().read(1, o.slba, out).ok());
    }
  }

  const FtlStats& stats = ssd.ftl().stats();
  FtlBehaviour result;
  const double host_writes =
      static_cast<double>(stats.host_writes - fill_stats.host_writes);
  const double programs =
      static_cast<double>(stats.flash_programs - fill_stats.flash_programs);
  result.waf = host_writes > 0 ? programs / host_writes : 0.0;
  result.gc_runs = stats.gc_runs - fill_stats.gc_runs;
  result.relocations = stats.gc_relocations - fill_stats.gc_relocations;
  result.measured_iops = ssd.controller().measured_iops();

  const NandGeometry& geometry = ssd.nand().geometry();
  result.min_erase = ~0u;
  for (std::uint32_t b = 0; b < geometry.total_blocks(); ++b) {
    result.min_erase = std::min(result.min_erase, ssd.nand().erase_count(b));
    result.max_erase = std::max(result.max_erase, ssd.nand().erase_count(b));
  }
  return result;
}

// ---- L2P journal: recovery time vs proactive epoch cadence ----

struct RecoverySample {
  std::uint64_t records_applied = 0;
  std::uint64_t oob_adopted = 0;
  std::uint64_t lost = 0;
  double micros = 0;
};

/// Sustained random writes, power loss, reboot, timed Ftl::recover().
/// `cadence` is L2pJournalConfig::snapshot_every_records (0 = roll only
/// when the journal half fills).
RecoverySample RunRecovery(std::uint64_t cadence) {
  constexpr std::uint64_t kLbas = 2048;
  constexpr std::uint64_t kWrites = 6000;
  SimClock clock;
  NandDevice nand(NandGeometry{.channels = 1,
                               .dies_per_channel = 1,
                               .planes_per_die = 1,
                               .blocks_per_plane = 128,
                               .pages_per_block = 32,
                               .page_bytes = kBlockSize});
  FtlConfig fc;
  fc.num_lbas = kLbas;
  fc.hammers_per_io = 1;
  fc.journal.enabled = true;
  fc.journal.blocks = 16;
  fc.journal.snapshot_every_records = cadence;
  const auto make_dram = [&clock] {
    DramConfig dc;
    dc.geometry = DramGeometry{.channels = 1,
                               .dimms_per_channel = 1,
                               .ranks_per_dimm = 1,
                               .banks_per_rank = 4,
                               .rows_per_bank = 64,
                               .row_bytes = 512};
    dc.profile = DramProfile::Invulnerable();
    return std::make_unique<DramDevice>(dc, MakeLinearMapper(dc.geometry),
                                        clock);
  };

  FaultPlan plan;
  plan.add(FaultClass::kPowerLoss, kWrites);
  FaultInjector injector(std::move(plan));
  auto dram = make_dram();
  auto ftl = std::make_unique<Ftl>(fc, nand, *dram);
  ftl->set_fault_injector(&injector);
  Rng rng(7);
  std::vector<std::uint8_t> block(kBlockSize, 0x44);
  for (std::uint64_t i = 0; i <= kWrites; ++i) {
    const Status s = ftl->write(Lba(rng.next_below(kLbas)), block);
    RHSD_CHECK(i < kWrites ? s.ok() : !s.ok());
  }
  RHSD_CHECK(ftl->powered_off());

  // Reboot: volatile state gone, flash survives; time the recovery.
  ftl.reset();
  dram = make_dram();
  ftl = std::make_unique<Ftl>(fc, nand, *dram);
  RHSD_CHECK(ftl->needs_recovery());
  FtlRecoveryReport report;
  const auto t0 = std::chrono::steady_clock::now();
  RHSD_CHECK(ftl->recover(&report).ok());
  const auto t1 = std::chrono::steady_clock::now();
  RecoverySample sample;
  sample.records_applied = report.records_applied;
  sample.oob_adopted = report.oob_adopted;
  sample.lost = report.lost_lbas.size();
  sample.micros =
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count() /
      1e3;
  return sample;
}

}  // namespace

int main() {
  std::printf("== FTL behaviour: write amplification / GC / wear ==\n");
  std::printf("(16 MiB device, 90%% utilized, 60K steady-state ops)\n\n");
  std::printf("%-12s %7s | %6s %8s %8s %12s %10s\n", "pattern", "writes",
              "WAF", "gc runs", "relocs", "erase min/max", "IOPS");
  std::printf("%.*s\n", 78,
              "----------------------------------------------------------"
              "--------------------");
  struct Row {
    AccessPattern pattern;
    double write_fraction;
  };
  const Row rows[] = {
      {AccessPattern::kSequential, 1.0},
      {AccessPattern::kRandom, 1.0},
      {AccessPattern::kZipfLike, 1.0},
      {AccessPattern::kHotCold, 1.0},
      {AccessPattern::kRandom, 0.3},
  };
  for (const Row& row : rows) {
    const FtlBehaviour r = Run(row.pattern, row.write_fraction);
    std::printf("%-12s %6.0f%% | %6.2f %8llu %8llu %8u/%-5u %10.0f\n",
                to_string(row.pattern), row.write_fraction * 100, r.waf,
                static_cast<unsigned long long>(r.gc_runs),
                static_cast<unsigned long long>(r.relocations),
                r.min_erase, r.max_erase, r.measured_iops);
  }
  std::printf(
      "\nshape check: sequential overwrites invalidate whole blocks\n"
      "(WAF ~1, zero relocations); random/skewed writes at 90%%\n"
      "utilization force GC to move live pages (WAF ~3); skew widens\n"
      "the wear spread (hot/cold erase min/max); read-heavy mixes\n"
      "relieve GC pressure.\n");

  // ---- L2P journal: recovery time vs proactive epoch cadence ----
  std::printf("\n== L2P journal: recovery time vs snapshot cadence ==\n");
  std::printf("(6000 random writes over 2048 LBAs, power loss, timed "
              "recover())\n\n");
  std::printf("%-14s %10s %10s %6s %12s\n", "cadence (recs)", "replayed",
              "oob adopt", "lost", "recover us");
  for (const std::uint64_t cadence : {0ull, 2048ull, 512ull, 128ull}) {
    const RecoverySample s = RunRecovery(cadence);
    std::printf("%-14llu %10llu %10llu %6llu %12.1f\n",
                static_cast<unsigned long long>(cadence),
                static_cast<unsigned long long>(s.records_applied),
                static_cast<unsigned long long>(s.oob_adopted),
                static_cast<unsigned long long>(s.lost), s.micros);
  }
  std::printf(
      "\nshape check: the record tail recover() must replay is bounded\n"
      "by the snapshot cadence, so recovery time falls as the cadence\n"
      "tightens (at the cost of extra snapshot write amplification\n"
      "during normal operation); acknowledged data is never lost at\n"
      "any cadence.\n");

  // ---- Flash media reliability sweep ----
  std::printf("\n== flash media: wear vs raw errors vs page ECC ==\n");
  std::printf("(RBER model: base 1e-6 + 2e-7/PE; page ECC corrects up "
              "to 72 bits)\n\n");
  std::printf("%-10s %14s %14s %12s\n", "P/E cycles", "raw errs/read",
              "reads failed", "of 2000");
  for (const int pe : {0, 1000, 5000, 10000, 20000}) {
    NandReliability reliability;
    reliability.base_rber = 1e-6;
    reliability.wear_rber_per_pe = 2e-7;
    NandDevice nand(NandGeometry{1, 1, 1, 8, 16, kBlockSize},
                    NandLatency{}, 0, reliability, 2026);
    for (int i = 0; i < pe; ++i) RHSD_CHECK(nand.erase(0).ok());
    std::vector<std::uint8_t> page(kBlockSize, 0x11);
    RHSD_CHECK(nand.program(0, 0, page, PageOob{0, 1}).ok());
    std::vector<std::uint8_t> out(kBlockSize);
    std::uint64_t raw = 0;
    int failed = 0;
    for (int i = 0; i < 2000; ++i) {
      std::uint32_t errors = 0;
      RHSD_CHECK(nand.read(0, 0, out, nullptr, &errors).ok());
      raw += errors;
      if (errors > 72) ++failed;
    }
    std::printf("%-10d %14.2f %14d %12s\n", pe, raw / 2000.0, failed,
                failed == 0 ? "(ECC holds)" : "(data loss)");
  }
  std::printf(
      "\nshape check: raw error rates grow linearly with wear; the\n"
      "page ECC absorbs them until the budget is crossed — the flash-\n"
      "side failure mode the paper contrasts with its DRAM-side attack\n"
      "([8, 28] attack these cells directly).\n");
  return 0;
}
