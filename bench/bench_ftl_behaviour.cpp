// FTL behaviour under realistic workloads: write amplification, garbage
// collection, and wear spread.
//
// Not a paper table — this is the substrate-health bench every SSD
// simulator ships.  It validates that the FTL the attack runs on behaves
// like a real log-structured FTL: WAF ~1 for sequential overwrites,
// rising under random/skewed writes as GC relocates live pages, with
// wear spread bounded by the FIFO free-block rotation.
#include <cstdio>

#include "sim/workload.hpp"
#include "ssd/ssd_device.hpp"

using namespace rhsd;

namespace {

struct FtlBehaviour {
  double waf = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t relocations = 0;
  std::uint32_t min_erase = 0;
  std::uint32_t max_erase = 0;
  double measured_iops = 0;
};

FtlBehaviour Run(AccessPattern pattern, double write_fraction) {
  SsdConfig config = SsdConfig::DemoSetup(16 * kMiB);
  config.dram_profile = DramProfile::Invulnerable();
  config.partition_blocks.clear();  // single namespace
  SsdDevice ssd(config);

  const std::uint64_t ws = config.num_lbas() * 9 / 10;
  WorkloadConfig workload;
  workload.pattern = pattern;
  workload.working_set = ws;
  workload.write_fraction = write_fraction;
  workload.seed = 99;
  WorkloadGenerator generator(workload);

  // Fill once so steady state has live data everywhere.
  std::vector<std::uint8_t> block(kBlockSize, 0x33);
  for (std::uint64_t slba = 0; slba < ws; ++slba) {
    RHSD_CHECK(ssd.controller().write(1, slba, block).ok());
  }
  const FtlStats fill_stats = ssd.ftl().stats();

  // Steady-state phase.
  std::vector<std::uint8_t> out(kBlockSize);
  for (int op = 0; op < 60000; ++op) {
    const WorkloadOp o = generator.next();
    if (o.is_write) {
      RHSD_CHECK(ssd.controller().write(1, o.slba, block).ok());
    } else {
      RHSD_CHECK(ssd.controller().read(1, o.slba, out).ok());
    }
  }

  const FtlStats& stats = ssd.ftl().stats();
  FtlBehaviour result;
  const double host_writes =
      static_cast<double>(stats.host_writes - fill_stats.host_writes);
  const double programs =
      static_cast<double>(stats.flash_programs - fill_stats.flash_programs);
  result.waf = host_writes > 0 ? programs / host_writes : 0.0;
  result.gc_runs = stats.gc_runs - fill_stats.gc_runs;
  result.relocations = stats.gc_relocations - fill_stats.gc_relocations;
  result.measured_iops = ssd.controller().measured_iops();

  const NandGeometry& geometry = ssd.nand().geometry();
  result.min_erase = ~0u;
  for (std::uint32_t b = 0; b < geometry.total_blocks(); ++b) {
    result.min_erase = std::min(result.min_erase, ssd.nand().erase_count(b));
    result.max_erase = std::max(result.max_erase, ssd.nand().erase_count(b));
  }
  return result;
}

}  // namespace

int main() {
  std::printf("== FTL behaviour: write amplification / GC / wear ==\n");
  std::printf("(16 MiB device, 90%% utilized, 60K steady-state ops)\n\n");
  std::printf("%-12s %7s | %6s %8s %8s %12s %10s\n", "pattern", "writes",
              "WAF", "gc runs", "relocs", "erase min/max", "IOPS");
  std::printf("%.*s\n", 78,
              "----------------------------------------------------------"
              "--------------------");
  struct Row {
    AccessPattern pattern;
    double write_fraction;
  };
  const Row rows[] = {
      {AccessPattern::kSequential, 1.0},
      {AccessPattern::kRandom, 1.0},
      {AccessPattern::kZipfLike, 1.0},
      {AccessPattern::kHotCold, 1.0},
      {AccessPattern::kRandom, 0.3},
  };
  for (const Row& row : rows) {
    const FtlBehaviour r = Run(row.pattern, row.write_fraction);
    std::printf("%-12s %6.0f%% | %6.2f %8llu %8llu %8u/%-5u %10.0f\n",
                to_string(row.pattern), row.write_fraction * 100, r.waf,
                static_cast<unsigned long long>(r.gc_runs),
                static_cast<unsigned long long>(r.relocations),
                r.min_erase, r.max_erase, r.measured_iops);
  }
  std::printf(
      "\nshape check: sequential overwrites invalidate whole blocks\n"
      "(WAF ~1, zero relocations); random/skewed writes at 90%%\n"
      "utilization force GC to move live pages (WAF ~3); skew widens\n"
      "the wear spread (hot/cold erase min/max); read-heavy mixes\n"
      "relieve GC pressure.\n");

  // ---- Flash media reliability sweep ----
  std::printf("\n== flash media: wear vs raw errors vs page ECC ==\n");
  std::printf("(RBER model: base 1e-6 + 2e-7/PE; page ECC corrects up "
              "to 72 bits)\n\n");
  std::printf("%-10s %14s %14s %12s\n", "P/E cycles", "raw errs/read",
              "reads failed", "of 2000");
  for (const int pe : {0, 1000, 5000, 10000, 20000}) {
    NandReliability reliability;
    reliability.base_rber = 1e-6;
    reliability.wear_rber_per_pe = 2e-7;
    NandDevice nand(NandGeometry{1, 1, 1, 8, 16, kBlockSize},
                    NandLatency{}, 0, reliability, 2026);
    for (int i = 0; i < pe; ++i) RHSD_CHECK(nand.erase(0).ok());
    std::vector<std::uint8_t> page(kBlockSize, 0x11);
    RHSD_CHECK(nand.program(0, 0, page, PageOob{0, 1}).ok());
    std::vector<std::uint8_t> out(kBlockSize);
    std::uint64_t raw = 0;
    int failed = 0;
    for (int i = 0; i < 2000; ++i) {
      std::uint32_t errors = 0;
      RHSD_CHECK(nand.read(0, 0, out, nullptr, &errors).ok());
      raw += errors;
      if (errors > 72) ++failed;
    }
    std::printf("%-10d %14.2f %14d %12s\n", pe, raw / 2000.0, failed,
                failed == 0 ? "(ECC holds)" : "(data loss)");
  }
  std::printf(
      "\nshape check: raw error rates grow linearly with wear; the\n"
      "page ECC absorbs them until the budget is crossed — the flash-\n"
      "side failure mode the paper contrasts with its DRAM-side attack\n"
      "([8, 28] attack these cells directly).\n");
  return 0;
}
