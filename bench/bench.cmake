# Bench binaries land directly in build/bench/ (and nothing else does),
# so `for b in build/bench/*; do $b; done` runs the whole suite.

# Host-performance JSON reporting shared by the benches (BENCH_hotpath.json).
add_library(rhsd_bench_report STATIC
  ${CMAKE_CURRENT_SOURCE_DIR}/bench/bench_report.cpp)
target_include_directories(rhsd_bench_report PUBLIC
  ${CMAKE_CURRENT_SOURCE_DIR}/bench)

function(rhsd_bench name)
  add_executable(${name} ${CMAKE_CURRENT_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE rhsd rhsd_bench_report)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

rhsd_bench(bench_table1_min_rates)
rhsd_bench(bench_fig1_two_sided)
rhsd_bench(bench_fig2_setups)
rhsd_bench(bench_fig3_ext4_exploit)
rhsd_bench(bench_sec43_probability)
rhsd_bench(bench_feasibility_matrix)
rhsd_bench(bench_mitigations)
rhsd_bench(bench_layout_ablation)
rhsd_bench(bench_sec32_outcomes)
rhsd_bench(bench_self_hammer)
rhsd_bench(bench_ftl_behaviour)
rhsd_bench(bench_cloud_scale)

rhsd_bench(bench_micro)
target_link_libraries(bench_micro PRIVATE benchmark::benchmark)
